"""Section 2's cost claim, and the engine's own throughput.

The paper notes the TCP checksum was historically 2x-4x faster than
Fletcher's sum.  These benchmarks measure the implementations here
(vectorized NumPy, so the ratios reflect this library, not 1990s CPUs)
plus the splice engine's splices-per-second rate.
"""

import numpy as np
import pytest

from repro.checksums.crc import CRC32_AAL5, CRCEngine
from repro.checksums.fletcher import fletcher8
from repro.checksums.internet import InternetChecksum, ones_complement_sum
from repro.core.engine import EngineOptions, SpliceEngine
from repro.corpus.generators import generate
from repro.protocols.ftpsim import FileTransferSimulator
from repro.protocols.packetizer import PacketizerConfig

BUFFER = generate("english", 65536, 1)


def test_internet_checksum_throughput(benchmark):
    result = benchmark(ones_complement_sum, BUFFER)
    assert 0 <= result <= 0xFFFF


@pytest.mark.parametrize("modulus", [255, 256])
def test_fletcher_throughput(benchmark, modulus):
    sums = benchmark(fletcher8, BUFFER, modulus)
    assert 0 <= sums.a < modulus


def test_crc32_throughput(benchmark):
    engine = CRCEngine(CRC32_AAL5)
    value = benchmark(engine.compute, BUFFER)
    assert 0 <= value <= 0xFFFFFFFF


def test_cell_sums_vectorized_throughput(benchmark):
    cells = np.frombuffer(BUFFER[: 48 * 1024], dtype=np.uint8).reshape(-1, 48)
    sums = benchmark(InternetChecksum.cell_sums, cells)
    assert sums.shape == (1024,)


def test_crc_cells_vectorized_throughput(benchmark):
    engine = CRCEngine(CRC32_AAL5)
    cells = np.frombuffer(BUFFER[: 48 * 1024], dtype=np.uint8).reshape(-1, 48)
    regs = benchmark(engine.process_cells, cells)
    assert regs.shape == (1024,)


def test_splice_engine_throughput(benchmark):
    """Splices evaluated per second by the full engine."""
    data = generate("english", 100_000, 2)
    units = FileTransferSimulator(PacketizerConfig()).transfer(data)
    engine = SpliceEngine(EngineOptions())

    counters = benchmark.pedantic(
        lambda: engine.evaluate_stream(units), rounds=3, iterations=1
    )
    assert counters.total > 300_000
    rate = counters.total / benchmark.stats["mean"]
    print("\nsplice engine: %.0f splices/second (%d splices/run)" % (
        rate, counters.total))


@pytest.mark.parametrize("name", ["wordwise", "deferred-32bit", "numpy-16bit",
                                  "numpy-32bit"])
def test_internet_strategy_throughput(benchmark, name):
    """RFC 1071's implementation tricks, measured against each other."""
    from repro.checksums.implementations import ALL_STRATEGIES

    strategy = ALL_STRATEGIES[name]
    value = benchmark(strategy, BUFFER)
    assert value == ones_complement_sum(BUFFER)
