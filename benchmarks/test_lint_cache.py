"""Incremental lint cache: the warm-run speedup gate.

The PR contract for the interprocedural engine: a warm, cache-restored
rerun over an unchanged tree must be at least 5x faster than the cold
run.  The fixture tree is synthetic but shaped like the real one --
cross-module imports, helpers, classes -- so both the per-module rules
and the whole-program phase (call graph + taint summaries) do real
work on the cold pass.

Uses ``time.perf_counter`` directly (no pytest-benchmark dependency):
the assertion is a ratio, not an absolute time, so it is stable across
machines.
"""

import time

from repro.lint.cache import LintCache
from repro.lint.engine import run_lint

#: Modules per package in the generated tree (x 3 packages).
_WIDTH = 20

_MODULE = '''\
"""Generated benchmark module %(index)d."""

from repro.core.dep_%(dep)d import transform_%(dep)d


def helper_%(index)d(value):
    return value * %(index)d + 1


def transform_%(index)d(rows):
    out = []
    for row in rows:
        out.append(helper_%(index)d(row))
    return transform_%(dep)d(out) if %(index)d %% 7 else out


class Stage%(index)d:
    def __init__(self, seed):
        self.seed = seed

    def run(self, rows):
        return transform_%(index)d(rows)
'''


def _build_tree(root):
    for package in ("core", "analysis", "store"):
        base = root / "repro" / package
        base.mkdir(parents=True)
        (base / "__init__.py").write_text("", encoding="utf-8")
        for index in range(_WIDTH):
            name = "dep_%d.py" % index if package == "core" \
                else "mod_%d.py" % index
            (base / name).write_text(
                _MODULE % {"index": index, "dep": max(0, index - 1)},
                encoding="utf-8",
            )
    (root / "repro" / "__init__.py").write_text("", encoding="utf-8")
    return root


def _timed(paths, cache_path):
    start = time.perf_counter()
    result = run_lint(paths, cache=LintCache(cache_path))
    return time.perf_counter() - start, result


class TestWarmSpeedup:
    def test_warm_rerun_is_at_least_5x_faster(self, tmp_path):
        root = _build_tree(tmp_path / "src")
        cache_path = tmp_path / "lint-cache.json"

        cold_s, cold = _timed([root], cache_path)
        assert cold.cache_hits == 0 and cold.cache_misses > 0

        # Best of three warm runs: absorbs one-off scheduler noise
        # without hiding a real regression.
        warm_s = min(
            _timed([root], cache_path)[0] for _ in range(3)
        )
        warm = run_lint([root], cache=LintCache(cache_path))
        assert warm.cache_misses == 0
        assert warm.cache_hits == cold.cache_misses
        assert [f.to_dict() for f in warm.findings] \
            == [f.to_dict() for f in cold.findings]

        speedup = cold_s / warm_s if warm_s else float("inf")
        print("\nlint cache: cold %.3fs, warm %.3fs (%.1fx)"
              % (cold_s, warm_s, speedup))
        assert speedup >= 5.0, (
            "warm cache rerun only %.1fx faster (cold %.3fs, warm %.3fs)"
            % (speedup, cold_s, warm_s)
        )
