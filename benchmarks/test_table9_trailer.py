"""Table 9: trailer checksums vs header checksums.

Paper shape: moving the TCP checksum to a trailer cuts the miss rate
20x-50x, approaching (sometimes beating) the 2^-16 uniform line.
"""

from benchmarks.conftest import regenerate

UNIFORM_PCT = 100.0 / 65536


def test_table9(benchmark):
    report = regenerate(benchmark, "table9", fs_bytes=500_000)
    improvements = []
    for row in report.data["rows"]:
        assert row["trailer_miss_pct"] < row["tcp_miss_pct"], row["system"]
        # The trailer rate lands near the uniform expectation.
        assert row["trailer_miss_pct"] < 10 * UNIFORM_PCT, row["system"]
        improvements.append(row["improvement"])
    # Aggregate improvement in the paper's 20x-50x class (allow slack).
    assert max(improvements) > 20
    assert sum(i > 5 for i in improvements) >= len(improvements) - 1
