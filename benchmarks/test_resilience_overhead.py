"""The clean-path overhead guarantee of the resilience layer.

The self-healing contract (docs/architecture.md, "Resilience"): with
every replica healthy, the breaker/hedge/spool machinery a resilient
multiplexer adds to each store operation — one controller tick, one
breaker lookup, one admission check, one outcome record — costs
**under 2% of the sweep's wall time** on a compute-dominated corpus.
Two measurements back the number:

* the *honest* one asserts it: the measured per-operation cost of the
  full breaker bookkeeping times the number of store operations a real
  cached sweep performs, over the measured store-less sweep time;
* the *end-to-end* one prints the observed delta between a resilient
  and a bare-multiplexer sweep over the same corpus, as a sanity
  cross-check (not asserted — wall-clock deltas of a few ms flake on
  loaded machines).

Not part of the tier-1 suite (``testpaths = ["tests"]``); run with
``pytest benchmarks/test_resilience_overhead.py -s`` or ``make bench``.
"""

from __future__ import annotations

import time

from repro.core.experiment import run_splice_experiment
from repro.protocols.packetizer import PacketizerConfig
from repro.store.backends.local import LocalBackend
from repro.store.backends.multiplex import MultiplexBackend
from repro.store.resilience import ResilienceController
from repro.store.runner import RunStore
from tests.conftest import make_filesystem

#: The advertised ceiling, with margin below it so the assertion does
#: not flake when the host is loaded.
RESILIENCE_PCT_LIMIT = 2.0

#: Per-file sizes chosen so splice compute dominates: the sweep takes
#: a couple of seconds while the breaker bookkeeping takes microseconds
#: per store operation.
KINDS = [
    ("english", 150_000),
    ("gmon", 120_000),
    ("c-source", 150_000),
    ("zero-heavy", 120_000),
]


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _store_ops(run_store):
    """Store operations the sweep performed, summed over namespaces."""
    total = 0
    for _, store in run_store.namespaces:
        counters = store.backend.counters
        total += counters.gets + counters.puts + counters.deletes
    return total


def test_resilience_overhead_under_two_percent(tmp_path):
    fs = make_filesystem(KINDS, seed=11, name="resiliencebench")
    config = PacketizerConfig()

    # Warm-up (corpus generation, imports), then the reference sweep.
    run_splice_experiment(fs, config)
    _, t_sweep = _timed(lambda: run_splice_experiment(fs, config))

    # How many store operations does a real cached sweep perform?
    bare = MultiplexBackend([LocalBackend(tmp_path / "bare")])
    bare_store = RunStore(backend=bare)
    _, t_bare = _timed(
        lambda: run_splice_experiment(fs, config, store=bare_store)
    )
    ops = _store_ops(bare_store)
    assert ops > 0

    # Honest per-op cost of the breaker bookkeeping a resilient
    # multiplexer adds to the clean path: tick + lookup + admission +
    # outcome, measured in isolation over enough rounds to resolve.
    controller = ResilienceController()
    replica = LocalBackend(tmp_path / "probe")
    breaker = controller.breaker_for(replica, 0)
    rounds = 200_000
    start = time.perf_counter()
    for _ in range(rounds):
        controller.tick()
        b = controller.breaker_for(replica, 0)
        b.allow()
        b.record_success()
    per_op = (time.perf_counter() - start) / rounds
    assert breaker.state == "closed"

    pct = 100.0 * (per_op * ops) / t_sweep

    # End-to-end cross-check (printed, not asserted).
    resilient = MultiplexBackend(
        [LocalBackend(tmp_path / "resilient")],
        resilience=ResilienceController(),
    )
    _, t_resilient = _timed(
        lambda: run_splice_experiment(
            fs, config, store=RunStore(backend=resilient)
        )
    )
    e2e_pct = 100.0 * (t_resilient - t_bare) / t_bare

    print(
        "\nresilience overhead: honest %.4f%% (%d store ops x %.2fus "
        "per op over %.2fs sweep) / end-to-end %+.2f%%"
        % (pct, ops, per_op * 1e6, t_sweep, e2e_pct)
    )
    assert pct < RESILIENCE_PCT_LIMIT


def test_clean_path_results_are_identical_with_and_without_breakers(
    tmp_path,
):
    """The layer is transparent when nothing fails: same counters."""
    fs = make_filesystem([("english", 20_000), ("gmon", 16_000)],
                         seed=3, name="transparencybench")
    config = PacketizerConfig()
    bare = run_splice_experiment(
        fs, config,
        store=RunStore(backend=MultiplexBackend(
            [LocalBackend(tmp_path / "a")]
        )),
    ).counters
    resilient = run_splice_experiment(
        fs, config,
        store=RunStore(backend=MultiplexBackend(
            [LocalBackend(tmp_path / "b")],
            resilience=ResilienceController(),
        )),
    ).counters
    assert bare == resilient
