"""Shared helpers for the benchmark harness.

Every paper table/figure has one benchmark that (a) regenerates it at a
benchmark-friendly corpus size, (b) prints the rows the paper reports,
and (c) asserts the published *shape* (who wins, by roughly what
factor).  Timings come from pytest-benchmark; run with
``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

import pytest

from repro.experiments.registry import run_experiment

#: Corpus size for benchmark runs: large enough for every observable
#: rate the assertions check, small enough to keep the suite fast.
BENCH_FS_BYTES = 400_000
BENCH_SEED = 3


def regenerate(benchmark, experiment_id, **kwargs):
    """Run one experiment under the benchmark timer and print it."""
    if experiment_id != "epd":
        kwargs.setdefault("fs_bytes", BENCH_FS_BYTES)
        kwargs.setdefault("seed", BENCH_SEED)
    report = benchmark.pedantic(
        lambda: run_experiment(experiment_id, **kwargs), rounds=1, iterations=1
    )
    print("\n" + str(report))
    return report


@pytest.fixture
def bench_fs_bytes():
    return BENCH_FS_BYTES
