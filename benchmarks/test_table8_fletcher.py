"""Table 8: Fletcher mod-255 / mod-256 vs the TCP checksum.

Paper shape: Fletcher-256 beats the TCP checksum by an order of
magnitude or more (the positional colouring effect), while Fletcher-255
loses to TCP on the Stanford volume containing the 0/255 PBM plots.
"""

from benchmarks.conftest import regenerate


def test_table8(benchmark):
    report = regenerate(benchmark, "table8", fs_bytes=500_000)
    rows = {}
    for row in report.data["rows"]:
        rows.setdefault(row["system"], {})[row["checksum"]] = row["miss_rate_pct"]

    for system, rates in rows.items():
        # F-256 is consistently far stronger than the TCP checksum.
        assert rates["F-256"] < rates["TCP"] / 3, system

    # The Section 5.5 inversion: the PBM directory drags F-255 below
    # plain TCP on stanford-u1.
    assert rows["stanford-u1"]["F-255"] > rows["stanford-u1"]["TCP"]

    # Everywhere else (no PBM data), F-255 beats the TCP checksum, as
    # in the paper's Table 8.
    for system in ("sics-opt", "sics-src1", "sics-src2", "stanford-usr-local"):
        assert rows[system]["F-255"] < rows[system]["TCP"], system
