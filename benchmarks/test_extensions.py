"""Extension experiments: error models, MSS sweep, loss models, Monte Carlo.

These go beyond the paper's tables to the questions it raises: how the
checksums fare under non-splice error models (Section 7), how segment
size changes the picture (Corollary 3), what realistic loss processes
do to the splice mix (Section 4.6's caveat), and whether the physical
drop-and-reassemble simulation agrees with the exact enumeration.
"""

from benchmarks.conftest import regenerate


def test_error_models(benchmark):
    report = regenerate(benchmark, "error-models", fs_bytes=150_000)
    data = report.data

    # Plummer's guarantees for the Internet checksum.
    assert data["1-bit flip"]["tcp_pct"] == 100.0
    assert data["15-bit burst"]["tcp_pct"] == 100.0
    # Order-independence: the word swap is invisible to the TCP sum,
    # largely visible to Fletcher, and always visible to the CRC.
    assert data["16-bit word swap"]["tcp_pct"] == 0.0
    assert data["16-bit word swap"]["f256_pct"] > 90.0
    assert data["16-bit word swap"]["crc32_pct"] == 100.0
    # CRC-32 catches every injected error at this scale.
    for row in data.values():
        assert row["crc32_pct"] == 100.0
    # Garbage replacement: near-certain detection for any 16-bit sum.
    assert data["48-byte garbage"]["tcp_pct"] > 99.0


def test_mss_sweep(benchmark):
    report = regenerate(benchmark, "mss-sweep", fs_bytes=200_000)
    rows = {row["mss"]: row for row in report.data["rows"]}
    # Larger segments -> more convolved cells -> lower miss rate
    # (compare the extremes; the middle is noisy).
    assert rows[1024]["miss_pct"] < rows[128]["miss_pct"]
    assert rows[1024]["cells"] == 23 and rows[128]["cells"] == 4
    for row in rows.values():
        assert row["splices"] > 0


def test_loss_models(benchmark):
    report = regenerate(benchmark, "loss-models", fs_bytes=150_000)
    data = report.data
    iid_low = data["independent p=0.1"]
    iid_high = data["independent p=0.3"]
    # Independent loss: conditional miss rate is invariant in p ...
    assert abs(
        iid_low["conditional_miss_pct"] - iid_high["conditional_miss_pct"]
    ) < 1e-9
    # ... while the per-transmission probability obviously is not.
    assert iid_high["p_transport_miss"] > 10 * iid_low["p_transport_miss"]
    # Bursty loss shifts the conditional rate (different splice mix).
    burst = data["Gilbert bursty (0.05, 0.3)"]
    assert burst["conditional_miss_pct"] != iid_low["conditional_miss_pct"]


def test_monte_carlo_crosscheck(benchmark):
    report = regenerate(
        benchmark, "montecarlo", fs_bytes=150_000, trials=120
    )
    data = report.data
    assert data["mc_corrupted"] > 50
    # The physical simulation agrees with the enumeration within
    # generous sampling noise, and nothing slips past both checks.
    assert data["enum_miss_pct"] > 1.0
    assert 0.2 * data["enum_miss_pct"] < data["mc_miss_pct"] < 5 * data["enum_miss_pct"]
    assert data["undetected"] == 0


def test_fragment_splices(benchmark):
    report = regenerate(benchmark, "fragment-splices", fs_bytes=120_000)
    data = report.data
    # Cell-splice model: Fletcher-256 enjoys a large colouring
    # advantage over TCP ...
    assert data["fletcher256"]["cell_pct"] < data["tcp"]["cell_pct"] / 5
    # ... which disappears when substitutions preserve offsets.
    assert data["fletcher256"]["fragment_pct"] > data["tcp"]["fragment_pct"] / 3
    assert data["tcp"]["fragment_remaining"] > 0


def test_failure_locality(benchmark):
    report = regenerate(benchmark, "failure-locality", fs_bytes=500_000)
    data = report.data
    # Section 5.5: a handful of files carries a wildly outsized share
    # of the misses.
    assert data["top_share_pct"] > 5 * data["top_byte_share_pct"]
    assert data["worst"][0]["missed"] > 0


def test_uniformity(benchmark):
    report = regenerate(benchmark, "uniformity", samples=100_000)
    for name, p_value in report.data.items():
        assert p_value > 1e-3, name
