"""Benchmarks for the repro.store persistence layer.

Two claims worth numbers: (a) a warm cache hit is orders of magnitude
cheaper than recomputing an experiment, and (b) the object store's
framing overhead (CRC trailer + atomic write) is small against the
splice work it saves.
"""

from __future__ import annotations

import pytest

from repro.corpus.generators import generate
from repro.experiments.registry import run_experiment
from repro.store.objstore import ObjectStore, frame_object, unframe_object
from repro.store.runner import RunStore

from benchmarks.conftest import BENCH_FS_BYTES, BENCH_SEED

BLOB = generate("english", 262_144, 5)


@pytest.fixture
def store_root(tmp_path, monkeypatch):
    root = tmp_path / "bench-store"
    monkeypatch.setenv("REPRO_CHECKSUMS_CACHE", str(root))
    return root


def test_objstore_put_throughput(benchmark, store_root):
    store = ObjectStore(store_root)
    counter = iter(range(10**9))

    def put_unique():
        return store.put(BLOB + next(counter).to_bytes(4, "big"))

    digest = benchmark(put_unique)
    assert digest in store


def test_objstore_get_verified_throughput(benchmark, store_root):
    store = ObjectStore(store_root)
    digest = store.put(BLOB)
    payload = benchmark(store.get, digest)
    assert payload == bytes(BLOB)


def test_trailer_frame_unframe_overhead(benchmark):
    def round_trip():
        payload, _ = unframe_object(frame_object(bytes(BLOB)))
        return payload

    assert benchmark(round_trip) == bytes(BLOB)


def test_experiment_cold_vs_warm_cache(benchmark, store_root):
    """A warm table4 hit must be >=10x cheaper than the cold run."""
    import time

    store = RunStore()
    started = time.perf_counter()
    cold = run_experiment("table4", fs_bytes=BENCH_FS_BYTES, seed=BENCH_SEED,
                          cache=store)
    cold_elapsed = time.perf_counter() - started

    warm = benchmark(
        lambda: run_experiment(
            "table4", fs_bytes=BENCH_FS_BYTES, seed=BENCH_SEED, cache=store
        )
    )
    assert warm.text == cold.text
    warm_elapsed = benchmark.stats.stats.mean
    print("\ncold %.3fs  warm %.6fs  speedup %.0fx"
          % (cold_elapsed, warm_elapsed, cold_elapsed / warm_elapsed))
    assert cold_elapsed / warm_elapsed >= 10
