"""The sweep-journal overhead guarantee on the splice hot path.

The crash-safety contract (docs/architecture.md, "Crash safety &
resume"): journaling a sweep — one atomic full rewrite of the
checkpoint file after every drained shard — costs **under 3% of the
sweep's wall time** on a compute-dominated corpus.  Two measurements
back the number:

* the *honest* one asserts it: per-flush cost of a realistically sized
  checkpoint payload (fingerprint + every completed shard's counters,
  framed and fsynced through ``atomic_write``) times the number of
  shards, over the measured journal-free sweep time;
* the *end-to-end* one prints the observed delta between a journaled
  and an unjournaled sweep for the same corpus, as a sanity cross-check
  (not asserted — wall-clock deltas of a few ms flake on loaded
  machines).

Not part of the tier-1 suite (``testpaths = ["tests"]``); run with
``pytest benchmarks/test_journal_overhead.py -s`` or ``make bench``.
"""

from __future__ import annotations

import time

from repro.core.experiment import run_splice_experiment
from repro.protocols.packetizer import PacketizerConfig
from repro.store.journal import ShardJournal
from tests.conftest import make_filesystem

#: The advertised ceiling, with margin below it so the assertion does
#: not flake when fsync is slow on a loaded machine.
JOURNAL_PCT_LIMIT = 3.0

#: Per-file sizes chosen so splice compute dominates: a sweep takes a
#: couple of seconds while four checkpoint fsyncs take milliseconds.
KINDS = [
    ("english", 150_000),
    ("gmon", 120_000),
    ("c-source", 150_000),
    ("zero-heavy", 120_000),
]


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_journal_overhead_under_three_percent(tmp_path):
    fs = make_filesystem(KINDS, seed=11, name="journalbench")
    config = PacketizerConfig()

    # Warm-up (corpus generation, imports), then the reference sweep.
    run_splice_experiment(fs, config)
    clean, t_sweep = _timed(lambda: run_splice_experiment(fs, config))

    # Honest flush cost: checkpoint a realistic payload once per shard,
    # growing the entry map exactly as a live sweep would.
    journal = ShardJournal(tmp_path / "bench.journal")
    journal.open_run("fp-bench", label=fs.name, total=len(KINDS))
    t_flushes = 0.0
    for index in range(len(KINDS)):
        _, dt = _timed(
            lambda i=index: journal.record("shard-%d" % i, clean.counters)
        )
        t_flushes += dt
    journal.complete()

    pct = 100.0 * t_flushes / t_sweep

    # End-to-end cross-check (printed, not asserted).
    e2e_journal = ShardJournal(tmp_path / "e2e.journal")
    _, t_journaled = _timed(
        lambda: run_splice_experiment(fs, config, journal=e2e_journal)
    )
    e2e_pct = 100.0 * (t_journaled - t_sweep) / t_sweep

    print(
        "\njournal overhead: %.3f%% honest (%d flushes, %.1f ms over a "
        "%.2f s sweep) / %+.1f%% end-to-end delta"
        % (pct, len(KINDS), t_flushes * 1e3, t_sweep, e2e_pct)
    )
    assert pct < JOURNAL_PCT_LIMIT
    # Sanity: the measurement saw real work on both sides.
    assert clean.counters.total > 0
    assert t_flushes > 0.0


def test_journal_stays_deleted_after_a_clean_benchmark_run(tmp_path):
    """A completed journaled sweep leaves no checkpoint behind."""
    fs = make_filesystem([("english", 30_000)], seed=11, name="journalbench")
    journal = ShardJournal(tmp_path / "clean.journal")
    run_splice_experiment(fs, PacketizerConfig(), journal=journal)
    assert not journal.exists()
