"""Section 5.5: pathological data families.

Paper shape: black-and-white PBM data causes total failure of
Fletcher-255 (~25% of all permutations pass, i.e. about half of the
remaining splices); hex-encoded PostScript bitmaps hurt both F-256 and
TCP; gmon-style sparse profiles devastate the TCP sum; uniform data is
fine for everyone.
"""

from benchmarks.conftest import regenerate

UNIFORM_PCT = 100.0 / 65536


def test_pathological_families(benchmark):
    report = regenerate(benchmark, "pathological", fs_bytes=300_000)
    data = report.data

    pbm = data["pathological-pbm"]
    # Catastrophic F-255 failure: tens of percent.
    assert pbm["F-255"] > 20
    assert pbm["F-255"] > pbm["TCP"] > 1
    assert pbm["F-256"] < pbm["F-255"] / 50

    gmon = data["pathological-gmon"]
    assert gmon["TCP"] > 1
    assert gmon["TCP"] > 100 * UNIFORM_PCT

    hexps = data["pathological-hexps"]
    assert hexps["TCP"] > 50 * UNIFORM_PCT

    uniform = data["uniform"]
    for label in ("TCP", "F-255", "F-256"):
        assert uniform[label] < 10 * UNIFORM_PCT, label
