"""Table 5: global vs local congruence.

Paper shape: blocks within 512 bytes are far more likely to be
checksum-congruent than blocks drawn from anywhere in the filesystem,
and most local congruences are byte-identical (benign); excluding them
still leaves the local rate well above the global one.
"""

from benchmarks.conftest import regenerate

UNIFORM_PCT = 100.0 / 65536


def test_table5(benchmark):
    report = regenerate(benchmark, "table5")
    for row in report.data["rows"]:
        k = row["k"]
        assert row["local_pct"] > 2 * row["global_pct"], k
        assert row["local_pct"] >= row["excl_identical_pct"] >= 0, k
        # Identical data accounts for a large share of local congruence.
        assert row["excl_identical_pct"] < row["local_pct"], k
        # Everything sits far above the uniform expectation.
        assert row["global_pct"] > 5 * UNIFORM_PCT, k
        assert row["excl_identical_pct"] > 5 * UNIFORM_PCT, k
