"""Table 6: sample congruence statistics vs actual splice failures.

Paper shape (Sections 4.6 and 5.4): the global statistics and the
i.i.d. prediction badly underpredict the actual per-length failure
rate; the local exclude-identical statistic with the cell-colouring
correction ``(m - k)/(m - 1)`` lands in the right range.
"""

import numpy as np

from benchmarks.conftest import regenerate


def test_table6(benchmark):
    report = regenerate(benchmark, "table6", systems=("stanford-u1", "sics-opt"))
    for system, data in report.data.items():
        ks = data["ks"]
        actual = np.array(data["actual_pct"])
        predicted = np.array(data["predicted_pct"])
        corrected = np.array(data["corrected_pct"])
        local = np.array(data["local_pct"])

        # By k = 4-5 the i.i.d. prediction has collapsed to ~uniform,
        # yet the actual rate has not (the paper's "does not tail off
        # with larger block sizes as it should").
        tail = slice(3, 5)
        assert (actual[tail] > 3 * predicted[tail]).all(), system
        # The local statistic is an upper bound of the right magnitude:
        # actual within [corrected/30, 1.5 * local] across k = 2..5.
        mid = slice(1, 5)
        assert (actual[mid] <= local[mid] * 1.5).all(), system
        assert actual[mid].mean() > corrected[mid].mean() / 30, system
