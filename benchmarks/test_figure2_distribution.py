"""Figure 2: the TCP checksum distribution over k-cell blocks.

Paper shape: heavily skewed sorted PDFs far above the uniform line;
the most common single-cell value covers orders of magnitude more than
1/65536; aggregating cells flattens the curve much more slowly than
the i.i.d. prediction.
"""

import numpy as np

from benchmarks.conftest import regenerate

UNIFORM = 1.0 / 65536


def test_figure2(benchmark):
    report = regenerate(benchmark, "figure2", fs_bytes=700_000)
    data = report.data

    # Hot-spots: the most common value is >> uniform.
    assert data["pmax_pct"] / 100 > 30 * UNIFORM
    # The top 0.1% of values covers percents of the mass (paper: 1-5%+).
    assert data["top_0p1pct_share_pct"] > 1.0

    pdf1 = np.array(data["pdf_k1"])
    pdf5 = np.array(data["pdf_k5"])
    predict = np.array(data["predict_k2"])
    measured2 = np.array(data["pdf_k2"])

    # Sorted PDFs are non-increasing and above uniform at the head.
    assert (np.diff(pdf1) <= 1e-12).all()
    assert pdf1[0] > 10 * UNIFORM

    # Aggregation flattens the head ... slowly.
    assert pdf5[0] <= pdf1[0] + 1e-12
    assert pdf5[0] > 5 * UNIFORM

    # The measured k=2 head stays far above the i.i.d. prediction's
    # tail region (the paper's central panel).
    assert measured2[10] > predict[30]
