"""Integration tests for the paper's headline findings.

Each test reproduces one of the claims listed in DESIGN.md at a corpus
size where the effect is statistically unambiguous.  These are the
"does the reproduction actually reproduce" tests.
"""

import pytest

from repro.analysis.distribution import distribution_over
from repro.core.experiment import run_splice_experiment
from repro.corpus.profiles import build_filesystem
from repro.corpus.transforms import compress_filesystem
from repro.protocols.packetizer import ChecksumPlacement, PacketizerConfig

FS_BYTES = 700_000
SEED = 3
UNIFORM_PCT = 100.0 / 65536

BASE = PacketizerConfig()


@pytest.fixture(scope="module")
def stanford():
    return build_filesystem("stanford-u1", FS_BYTES, SEED)


@pytest.fixture(scope="module")
def sics_opt():
    return build_filesystem("sics-opt", FS_BYTES, SEED)


@pytest.fixture(scope="module")
def stanford_tcp(stanford):
    return run_splice_experiment(stanford, BASE).counters


@pytest.fixture(scope="module")
def sics_opt_tcp(sics_opt):
    return run_splice_experiment(sics_opt, BASE).counters


class TestClaim1CrcUniform:
    def test_crc32_misses_nothing_at_this_scale(self, stanford_tcp):
        assert stanford_tcp.missed_crc32 == 0

    def test_crc16_rate_matches_uniform_prediction(self, stanford_tcp, sics_opt_tcp):
        # A 16-bit CRC standing in for the AAL5 CRC misses at ~2^-16
        # even on data that defeats the TCP checksum.
        merged = stanford_tcp + sics_opt_tcp
        rate = merged.miss_rate_aux("crc16-ccitt")
        assert rate < 6 * UNIFORM_PCT
        assert merged.miss_rate_transport > 20 * rate


class TestClaim2TcpWorseThanUniform:
    def test_rates_inside_paper_band(self, stanford_tcp, sics_opt_tcp):
        # Paper: between 0.008% and 0.22% of remaining splices.
        for counters in (stanford_tcp, sics_opt_tcp):
            assert 0.004 < counters.miss_rate_transport < 0.4

    def test_tcp_10_to_100x_worse_than_uniform(self, stanford_tcp, sics_opt_tcp):
        assert 5 * UNIFORM_PCT < stanford_tcp.miss_rate_transport
        assert sics_opt_tcp.miss_rate_transport > 50 * UNIFORM_PCT

    def test_effective_bits_near_10(self, sics_opt_tcp):
        # "the 16 bit TCP checksum performed about as well as a 10 bit
        # CRC" -- the worst filesystem lands near 9-10 bits.
        assert 7.5 < sics_opt_tcp.effective_bits < 12.5


class TestClaim3SkewedDistributions:
    def test_hotspots_exist(self, stanford):
        dist = distribution_over(stanford, "internet", 1)
        # Most common value covers far more than uniform's 0.0015%.
        assert dist.pmax > 0.003
        # Top 0.1% of values covers several percent of the cells.
        assert dist.top_value_share(65) > 0.02

    def test_most_common_value_is_zero_congruent(self, stanford):
        dist = distribution_over(stanford, "internet", 1)
        value, _ = dist.most_common(1)[0]
        assert value in (0x0000, 0xFFFF)


class TestClaim4AggregationSlowerThanIid:
    def test_measured_match_stays_far_above_prediction(self, stanford):
        from repro.analysis.convolution import predicted_match_probability
        from repro.analysis.distribution import (
            block_checksum_values,
            cell_checksum_values,
        )
        from repro.analysis.convolution import class_pmf, match_probability

        cell_values = cell_checksum_values(stanford)
        for k in (2, 4):
            predicted = predicted_match_probability(cell_values, k)
            measured = match_probability(class_pmf(block_checksum_values(stanford, k)))
            assert measured > 10 * predicted


class TestClaim5Locality:
    def test_local_congruence_dominates_global(self, stanford):
        from repro.analysis.locality import locality_statistics

        stats = locality_statistics(stanford, ks=(1, 2))
        for k in (1, 2):
            assert stats[k].local_match > 2 * stats[k].global_match
            assert stats[k].local_match_excluding_identical > 0


class TestClaim6Compression:
    def test_compression_restores_uniform_rate(self, sics_opt):
        before = run_splice_experiment(sics_opt, BASE).counters
        after = run_splice_experiment(compress_filesystem(sics_opt), BASE).counters
        assert before.miss_rate_transport > 20 * UNIFORM_PCT
        assert after.miss_rate_transport < 10 * UNIFORM_PCT
        assert after.miss_rate_transport < before.miss_rate_transport / 20


class TestClaim7Fletcher:
    def test_f256_beats_tcp(self, sics_opt, sics_opt_tcp):
        f256 = run_splice_experiment(
            sics_opt, BASE.with_overrides(algorithm="fletcher256")
        ).counters
        assert f256.miss_rate_transport < sics_opt_tcp.miss_rate_transport / 10

    def test_f255_pathological_on_pbm(self):
        fs = build_filesystem("pathological-pbm", 250_000, SEED)
        tcp = run_splice_experiment(fs, BASE).counters
        f255 = run_splice_experiment(
            fs, BASE.with_overrides(algorithm="fletcher255")
        ).counters
        f256 = run_splice_experiment(
            fs, BASE.with_overrides(algorithm="fletcher256")
        ).counters
        assert f255.miss_rate_transport > 20  # catastrophic (tens of %)
        assert f255.miss_rate_transport > tcp.miss_rate_transport
        assert f256.miss_rate_transport < 1

    def test_f255_worse_than_tcp_on_stanford(self, stanford, stanford_tcp):
        # The Figure-8 inversion: the PBM directory drags F-255 below
        # the plain TCP checksum on this volume.
        f255 = run_splice_experiment(
            stanford, BASE.with_overrides(algorithm="fletcher255")
        ).counters
        assert f255.miss_rate_transport > stanford_tcp.miss_rate_transport


class TestClaim8Trailer:
    def test_trailer_20_to_50x_better(self, stanford, stanford_tcp):
        trailer = run_splice_experiment(
            stanford, BASE.with_overrides(placement=ChecksumPlacement.TRAILER)
        ).counters
        ratio = stanford_tcp.miss_rate_transport / max(
            trailer.miss_rate_transport, 1e-9
        )
        assert ratio > 10

    def test_trailer_rejects_identical_splices(self, stanford):
        trailer = run_splice_experiment(
            stanford, BASE.with_overrides(placement=ChecksumPlacement.TRAILER)
        ).counters
        assert trailer.identical_rejected > 0
        assert trailer.identical_rejected > trailer.missed_transport

    def test_header_never_rejects_identical(self, stanford_tcp):
        assert stanford_tcp.identical_rejected == 0


class TestClaim9SecondHeaderColoring:
    def test_splices_with_second_header_rarely_missed(self, stanford_tcp, sics_opt_tcp):
        # Section 5.3: the header cell is differently coloured, so
        # substitutions that include it fail at ~2^-16, far below the
        # all-data substitution rate.
        merged = stanford_tcp + sics_opt_tcp
        with_hdr2 = merged.missed_with_hdr2 / max(merged.remaining_with_hdr2, 1)
        without = (merged.missed_transport - merged.missed_with_hdr2) / max(
            merged.remaining - merged.remaining_with_hdr2, 1
        )
        assert without > 5 * with_hdr2


class TestAblations:
    def test_inverted_vs_plain_equivalent(self, sics_opt):
        inverted = run_splice_experiment(sics_opt, BASE).counters
        plain = run_splice_experiment(
            sics_opt, BASE.with_overrides(invert=False)
        ).counters
        low = max(1, inverted.missed_transport)
        assert 0.5 < plain.missed_transport / low < 2.0

    def test_unfilled_header_inflates_misses(self):
        fs = build_filesystem("sics-opt", 400_000, SEED)
        filled = run_splice_experiment(fs, BASE).counters
        unfilled = run_splice_experiment(
            fs, BASE.with_overrides(fill_ip_header=False)
        ).counters
        assert unfilled.missed_transport > 3 * max(filled.missed_transport, 1)
