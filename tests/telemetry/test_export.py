"""Markdown rendering and the ``--metrics`` writer."""

import io
import json

from repro.telemetry.core import Telemetry
from repro.telemetry.export import render_markdown, write_metrics


def _sample():
    t = Telemetry()
    with t.span("outer"):
        with t.span("inner"):
            pass
    t.count("widgets", 7)
    t.gauge("workers", 2)
    t.meter("bytes", 4096, 0.5)
    t.observe("latency", 0.004)
    return t.snapshot()


class TestRenderMarkdown:
    def test_sections_present(self):
        text = render_markdown(_sample())
        for heading in ("# Telemetry", "## Spans", "## Counters",
                        "## Gauges", "## Meters", "## Histograms"):
            assert heading in text
        assert "outer" in text and "inner" in text
        assert "| widgets | 7 |" in text

    def test_empty_snapshot_renders(self):
        from repro.telemetry.core import NULL

        text = render_markdown(NULL.snapshot())
        assert "no telemetry recorded" in text


class TestWriteMetrics:
    def test_json_to_stream(self):
        stream = io.StringIO()
        text = write_metrics(_sample(), "json", stream=stream)
        assert stream.getvalue() == text
        assert json.loads(text)["counters"]["widgets"] == 7

    def test_md_to_stream(self):
        stream = io.StringIO()
        write_metrics(_sample(), "md", stream=stream)
        assert "## Counters" in stream.getvalue()

    def test_json_path(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics(_sample(), str(path))
        assert json.loads(path.read_text())["gauges"]["workers"] == 2

    def test_markdown_path(self, tmp_path):
        path = tmp_path / "metrics.md"
        write_metrics(_sample(), str(path))
        assert path.read_text().startswith("# Telemetry")
