"""Bench snapshot schema validation, persistence, and deltas."""

import json

import pytest

from repro.telemetry.bench import (
    BENCH_SCHEMA,
    delta_table,
    latest_snapshot,
    next_snapshot_path,
    validate_snapshot,
    write_snapshot,
)


def _payload():
    """A minimal, valid bench snapshot."""
    return {
        "schema": BENCH_SCHEMA,
        "created_unix": 1_700_000_000,
        "quick": True,
        "machine": {"python": "3.x", "platform": "test", "processor": "test"},
        "workload": {"seed": 1, "cell_bytes": 48},
        "algorithms": {
            "internet": {
                "width": 16,
                "kind": "checksum",
                "cells_per_sec": 1e6,
                "splices_per_sec": 1e5,
            },
            "crc32-aal5": {
                "width": 32,
                "kind": "crc",
                "cells_per_sec": 2e6,
                "splices_per_sec": 5e3,
            },
        },
        "engine": [
            {
                "algorithm": "tcp",
                "placement": "header",
                "corpus_bytes": 60_000,
                "splices": 123456,
                "seconds": 0.5,
                "splices_per_sec": 246912.0,
            }
        ],
        "overhead": {"disabled_pct": 0.01, "enabled_pct": 1.2, "batches": 4},
    }


def _channel_entry(cells_per_sec=5e4):
    return {
        "cells": 2604,
        "seconds": 0.05,
        "cells_per_sec": cells_per_sec,
        "frames": 63,
        "retransmissions": 0,
    }


class TestValidation:
    def test_valid_payload_passes(self):
        assert validate_snapshot(_payload()) is not None

    def test_wrong_schema_rejected(self):
        payload = _payload()
        payload["schema"] = "repro-bench/999"
        with pytest.raises(ValueError, match="schema mismatch"):
            validate_snapshot(payload)

    def test_missing_top_key_rejected(self):
        payload = _payload()
        del payload["overhead"]
        with pytest.raises(ValueError, match="drift"):
            validate_snapshot(payload)

    def test_extra_top_key_rejected(self):
        payload = _payload()
        payload["surprise"] = 1
        with pytest.raises(ValueError, match="drift"):
            validate_snapshot(payload)

    def test_algorithm_missing_key_rejected(self):
        payload = _payload()
        del payload["algorithms"]["internet"]["cells_per_sec"]
        with pytest.raises(ValueError, match="internet"):
            validate_snapshot(payload)

    def test_non_positive_rate_rejected(self):
        payload = _payload()
        payload["algorithms"]["internet"]["splices_per_sec"] = 0
        with pytest.raises(ValueError, match="non-positive"):
            validate_snapshot(payload)

    def test_empty_engine_rejected(self):
        payload = _payload()
        payload["engine"] = []
        with pytest.raises(ValueError, match="engine"):
            validate_snapshot(payload)

    def test_channel_section_is_optional(self):
        # BENCH_0001/0002 predate the channel simulator.
        assert "channel" not in _payload()
        assert validate_snapshot(_payload()) is not None

    def test_channel_section_validated_when_present(self):
        payload = _payload()
        payload["channel"] = {"clean": _channel_entry()}
        assert validate_snapshot(payload) is not None
        payload["channel"]["clean"]["surprise"] = 1
        with pytest.raises(ValueError, match="channel plan 'clean'"):
            validate_snapshot(payload)

    def test_channel_non_positive_rate_rejected(self):
        payload = _payload()
        payload["channel"] = {"clean": _channel_entry(cells_per_sec=0)}
        with pytest.raises(ValueError, match="non-positive"):
            validate_snapshot(payload)


class TestPersistence:
    def test_snapshots_are_append_only(self, tmp_path):
        assert next_snapshot_path(tmp_path).name == "BENCH_0001.json"
        first = write_snapshot(_payload(), tmp_path)
        assert first.name == "BENCH_0001.json"
        second = write_snapshot(_payload(), tmp_path)
        assert second.name == "BENCH_0002.json"
        payload, path = latest_snapshot(tmp_path)
        assert path == second
        assert payload["schema"] == BENCH_SCHEMA

    def test_latest_of_empty_dir(self, tmp_path):
        assert latest_snapshot(tmp_path) == (None, None)

    def test_write_rejects_invalid(self, tmp_path):
        payload = _payload()
        payload.pop("machine")
        with pytest.raises(ValueError):
            write_snapshot(payload, tmp_path)
        assert latest_snapshot(tmp_path) == (None, None)

    def test_written_file_is_stable_json(self, tmp_path):
        path = write_snapshot(_payload(), tmp_path)
        assert json.loads(path.read_text()) == _payload()


class TestDeltaTable:
    def test_first_snapshot_renders_absolutes(self):
        text = delta_table(None, _payload())
        assert "| internet cells/s | 1000000 | - | n/a |" in text

    def test_delta_against_previous(self):
        previous = _payload()
        current_payload = _payload()
        current_payload["algorithms"]["internet"]["cells_per_sec"] = 2e6
        text = delta_table(previous, current_payload)
        assert "+100.0%" in text

    def test_overhead_line_present(self):
        assert "telemetry disabled overhead" in delta_table(None, _payload())

    def test_channel_rows_render_when_present(self):
        payload = _payload()
        payload["channel"] = {"bursty-link": _channel_entry()}
        text = delta_table(None, payload)
        assert "| channel bursty-link cells/s | 50000 | - | n/a |" in text

    def test_channel_delta_against_previous(self):
        previous = _payload()
        previous["channel"] = {"clean": _channel_entry(5e4)}
        current_payload = _payload()
        current_payload["channel"] = {"clean": _channel_entry(1e5)}
        assert "+100.0%" in delta_table(previous, current_payload)
