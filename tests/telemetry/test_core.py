"""Span nesting, instruments, snapshot round-trips, and the no-op twin."""

import json

import pytest

from repro.telemetry.core import (
    NULL,
    TELEMETRY_SCHEMA,
    NullTelemetry,
    Telemetry,
    activate,
    collect,
    current,
    deactivate,
)


class TestSpans:
    def test_nesting_builds_a_tree(self):
        t = Telemetry()
        with t.span("outer"):
            with t.span("inner"):
                pass
            with t.span("inner"):
                pass
        spans = t.snapshot()["spans"]
        assert len(spans) == 1
        outer = spans[0]
        assert outer["name"] == "outer"
        assert outer["count"] == 1
        (inner,) = outer["children"]
        assert inner["name"] == "inner"
        assert inner["count"] == 2  # aggregated, not appended

    def test_same_name_under_different_parents_is_distinct(self):
        t = Telemetry()
        with t.span("a"):
            with t.span("x"):
                pass
        with t.span("b"):
            with t.span("x"):
                pass
        spans = {entry["name"]: entry for entry in t.snapshot()["spans"]}
        assert spans["a"]["children"][0]["count"] == 1
        assert spans["b"]["children"][0]["count"] == 1

    def test_hot_loop_is_constant_memory(self):
        t = Telemetry()
        for _ in range(1000):
            with t.span("loop"):
                pass
        (node,) = t.snapshot()["spans"]
        assert node["count"] == 1000
        assert "children" not in node

    def test_span_times_accumulate(self):
        t = Telemetry()
        with t.span("timed"):
            sum(range(1000))
        (node,) = t.snapshot()["spans"]
        assert node["wall_s"] >= 0.0
        assert node["cpu_s"] >= 0.0

    def test_exception_inside_span_still_closes_it(self):
        t = Telemetry()
        with pytest.raises(RuntimeError):
            with t.span("boom"):
                raise RuntimeError("x")
        (node,) = t.snapshot()["spans"]
        assert node["count"] == 1
        # the stack unwound: a new span lands at the root again
        with t.span("after"):
            pass
        assert [e["name"] for e in t.snapshot()["spans"]] == ["boom", "after"]


class TestInstruments:
    def test_counters_accumulate(self):
        t = Telemetry()
        t.count("c")
        t.count("c", 41)
        assert t.snapshot()["counters"]["c"] == 42

    def test_gauge_keeps_last_value(self):
        t = Telemetry()
        t.gauge("g", 1)
        t.gauge("g", 7)
        assert t.snapshot()["gauges"]["g"] == 7

    def test_meter_rate(self):
        t = Telemetry()
        t.meter("m", 500, 0.25)
        t.meter("m", 500, 0.25)
        entry = t.snapshot()["meters"]["m"]
        assert entry["amount"] == 1000
        assert entry["seconds"] == pytest.approx(0.5)
        assert entry["rate"] == pytest.approx(2000.0)

    def test_histogram_summary(self):
        t = Telemetry()
        for value in (0.001, 0.002, 0.004):
            t.observe("h", value)
        entry = t.snapshot()["histograms"]["h"]
        assert entry["count"] == 3
        assert entry["min_s"] == pytest.approx(0.001)
        assert entry["max_s"] == pytest.approx(0.004)
        assert entry["sum_s"] == pytest.approx(0.007)
        assert sum(entry["buckets"]) == 3


class TestSnapshot:
    def test_schema_stamp(self):
        assert Telemetry().snapshot()["schema"] == TELEMETRY_SCHEMA

    def test_json_round_trip(self):
        t = Telemetry()
        with t.span("s"):
            t.count("c", 3)
            t.meter("m", 10, 0.1)
            t.observe("h", 0.01)
            t.gauge("g", 2)
        replayed = json.loads(t.to_json())
        assert replayed == t.snapshot()

    def test_names_are_sorted(self):
        t = Telemetry()
        t.count("zz")
        t.count("aa")
        assert list(t.snapshot()["counters"]) == ["aa", "zz"]


class TestDisabledState:
    def test_default_is_null(self):
        assert current() is NULL
        assert not current().enabled

    def test_null_span_is_shared_and_inert(self):
        first = NULL.span("a")
        second = NULL.span("b")
        assert first is second  # one shared object: zero allocation
        with first:
            pass

    def test_null_instruments_record_nothing(self):
        NULL.count("c", 5)
        NULL.gauge("g", 1)
        NULL.meter("m", 1, 1.0)
        NULL.observe("h", 0.1)
        snapshot = NULL.snapshot()
        assert snapshot["schema"] == TELEMETRY_SCHEMA
        assert snapshot["counters"] == {}
        assert snapshot["spans"] == []

    def test_null_has_no_instance_dict(self):
        assert not hasattr(NullTelemetry(), "__dict__")

    def test_activate_deactivate(self):
        t = activate()
        assert current() is t and t.enabled
        displaced = deactivate()
        assert displaced is t
        assert current() is NULL

    def test_collect_restores_on_exit(self):
        with collect() as t:
            assert current() is t
            t.count("x")
        assert current() is NULL

    def test_collect_restores_on_error(self):
        with pytest.raises(ValueError):
            with collect():
                raise ValueError("boom")
        assert current() is NULL
