"""Telemetry tests must never leak an active registry into the suite."""

import pytest

from repro.telemetry.core import deactivate


@pytest.fixture(autouse=True)
def _restore_disabled_state():
    yield
    deactivate()
