"""The stable ``repro.api`` facade and the package-level lazy exports."""

import pytest

import repro
import repro.api as api


class TestFacadeSurface:
    def test_all_is_exactly_the_contract(self):
        assert sorted(api.__all__) == [
            "ArqConfig",
            "BatchChecksumAlgorithm",
            "ChannelPlan",
            "ChannelReport",
            "ChecksumPlacement",
            "CircuitBreaker",
            "EngineKind",
            "IndependentLoss",
            "ManualClock",
            "PacketizerConfig",
            "ResilienceController",
            "RetryPolicy",
            "RunAborted",
            "RunHealth",
            "ShardJournal",
            "SweepInterrupted",
            "Telemetry",
            "TraceError",
            "TransferReport",
            "WriteSpool",
            "activate_telemetry",
            "algorithm_names",
            "algorithm_summaries",
            "algorithms",
            "audit_run_store",
            "bench_delta_table",
            "build_channel_trace",
            "build_filesystem",
            "channel_plan_names",
            "current_controller",
            "current_telemetry",
            "deactivate_telemetry",
            "default_journal_dir",
            "default_spool_dir",
            "drain_spool",
            "experiment_ids",
            "generate_markdown_report",
            "latest_bench_snapshot",
            "lint_rules",
            "named_channel_plan",
            "named_plan",
            "open_backend",
            "open_journal",
            "open_store",
            "plan_names",
            "profile_names",
            "profile_summaries",
            "read_channel_trace",
            "replay_channel_trace",
            "run_bench",
            "run_channel_sweep",
            "run_channel_transfer",
            "run_experiment",
            "run_lint",
            "run_splice_experiment",
            "scrub_run_store",
            "serve_store",
            "simulate_file_transfer",
            "sum_file",
            "supports_batch",
            "sweep_guard",
            "validate_bench_snapshot",
            "wrap_run_store",
            "write_bench_snapshot",
            "write_channel_trace",
            "write_figure_svg",
            "write_metrics",
        ]

    def test_every_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_package_reexports_are_the_same_objects(self):
        for name in api.__all__:
            assert getattr(repro, name) is getattr(api, name)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            api.nonexistent_name

    def test_dir_lists_the_contract(self):
        for name in api.__all__:
            assert name in dir(api)


class TestAlgorithms:
    def test_returns_conforming_instances(self):
        from repro.checksums import ChecksumAlgorithm

        algorithms = api.algorithms()
        assert "internet" in algorithms and "crc32-aal5" in algorithms
        for name, algorithm in algorithms.items():
            assert isinstance(algorithm, ChecksumAlgorithm)
            assert algorithm.width > 0

    def test_sorted_iteration_order(self):
        names = list(api.algorithms())
        assert names == sorted(names)


class TestSumFile:
    def test_default_algorithm(self, tmp_path):
        path = tmp_path / "data.bin"
        path.write_bytes(b"123456789")
        from repro.checksums import internet_checksum

        assert api.sum_file(str(path)) == internet_checksum(b"123456789")

    def test_named_algorithm(self, tmp_path):
        path = tmp_path / "data.bin"
        path.write_bytes(b"123456789")
        assert api.sum_file(str(path), "crc32-aal5") == 0xFC891918


class TestOpenStore:
    def test_rooted_run_store(self, tmp_path):
        store = api.open_store(tmp_path / "store")
        from repro.store.runner import RunStore

        assert isinstance(store, RunStore)
        assert store.root == tmp_path / "store"

    def test_algorithm_override(self, tmp_path):
        store = api.open_store(tmp_path / "store", algorithm="crc32c")
        assert store.algorithm == "crc32c"


class TestRunExperiment:
    def test_facade_runs_and_caches(self, tmp_path):
        store = api.open_store(tmp_path / "store")
        first = api.run_experiment(
            "table5", cache=store, fs_bytes=60_000, seed=2
        )
        second = api.run_experiment(
            "table5", cache=store, fs_bytes=60_000, seed=2
        )
        assert first.text == second.text
        assert store.results.stats.hits >= 1

    def test_ids_cover_the_paper_tables(self):
        ids = api.experiment_ids()
        for table in ("table1", "table5", "figure2", "epd"):
            assert table in ids


class TestTelemetryExport:
    def test_telemetry_is_the_real_class(self):
        from repro.telemetry.core import Telemetry

        assert api.Telemetry is Telemetry
        assert repro.Telemetry is Telemetry


class TestSummaries:
    def test_algorithm_summaries_cover_every_name(self):
        summaries = api.algorithm_summaries()
        names = [name for name, _, _ in summaries]
        assert names == api.algorithm_names()
        for name, width, kind in summaries:
            assert width > 0
            assert kind in ("checksum", "CRC")

    def test_profile_summaries_cover_every_name(self):
        summaries = api.profile_summaries()
        assert [name for name, _ in summaries] == api.profile_names()


class TestLazyResolution:
    def test_lazy_names_resolve_to_their_implementations(self):
        from repro.core.supervisor import RunAborted
        from repro.store.audit import audit_run_store

        assert api.RunAborted is RunAborted
        assert api.audit_run_store is audit_run_store
