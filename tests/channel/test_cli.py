"""Tests for the ``channel`` CLI subcommand."""

import json

from repro.channel.arq import ARQ_KINDS
from repro.cli import _ARQ_CHOICES, main


class TestChoices:
    def test_arq_choices_match_package(self):
        assert _ARQ_CHOICES == ARQ_KINDS


class TestPlans:
    def test_lists_named_plans(self, capsys):
        assert main(["channel", "plans"]) == 0
        out = capsys.readouterr().out
        for name in ("clean", "lossy-link", "bursty-link",
                     "reordering-link", "congested-queue"):
            assert name in out


class TestRun:
    def test_clean_run_exits_zero(self, capsys):
        code = main(["channel", "run", "--plan", "clean",
                     "--bytes", "30000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "frames abandoned   0" in out
        assert "silently corrupted 0" in out

    def test_degraded_delivery_exits_four(self, capsys):
        # Budget 0 on a lossy link: frames are abandoned, the report
        # still prints, and the documented exit code is 4.
        code = main(["channel", "run", "--plan", "lossy-link",
                     "--bytes", "30000", "--budget", "0",
                     "--timeout", "8"])
        out = capsys.readouterr().out
        assert code == 4
        assert "frames abandoned" in out
        assert "budget exhausted" in out

    def test_arq_kind_selectable(self, capsys):
        code = main(["channel", "run", "--plan", "clean",
                     "--bytes", "20000", "--arq", "stop-and-wait"])
        out = capsys.readouterr().out
        assert code == 0
        assert "stop-and-wait" in out


class TestTraceReplay:
    def test_record_then_replay_identical(self, tmp_path, capsys):
        trace = tmp_path / "run.trace"
        assert main(["channel", "run", "--plan", "bursty-link",
                     "--bytes", "30000", "--trace", str(trace)]) == 0
        assert trace.exists()
        assert main(["channel", "replay", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "replay identical" in out

    def test_replay_workers_flag_irrelevant(self, tmp_path):
        trace = tmp_path / "run.trace"
        assert main(["channel", "run", "--plan", "lossy-link",
                     "--bytes", "30000", "--trace", str(trace)]) == 0
        assert main(["channel", "replay", str(trace),
                     "--workers", "4"]) == 0

    def test_tampered_trace_exits_two(self, tmp_path, capsys):
        trace = tmp_path / "run.trace"
        assert main(["channel", "run", "--plan", "clean",
                     "--bytes", "20000", "--trace", str(trace)]) == 0
        payload = json.loads(trace.read_text())
        payload["report"]["delivered_clean"] += 1
        trace.write_text(json.dumps(payload))
        code = main(["channel", "replay", str(trace)])
        err = capsys.readouterr().err
        assert code == 2
        assert "digest" in err

    def test_missing_trace_exits_two(self, capsys):
        assert main(["channel", "replay", "/nonexistent/file.trace"]) == 2


class TestChaosChannelCheck:
    def test_chaos_reports_channel_determinism(self, capsys):
        code = main(["chaos", "--plan", "congested-queue",
                     "--bytes", "30000", "--workers", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "channel link       deterministic" in out

    def test_chaos_without_channel_plan_omits_line(self, capsys):
        code = main(["chaos", "--plan", "bitrot", "--bytes", "30000",
                     "--workers", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "channel link" not in out
