"""Tests for the composed link pipeline."""

from repro.channel.link import ChannelLink
from repro.channel.plan import ChannelPlan, named_channel_plan


def drive(plan, cells=2_000):
    link = ChannelLink(plan)
    deliveries = []
    for index in range(cells):
        deliveries.extend(link.send(bytes([index % 251]) * 48, False, float(index)))
    return link, deliveries


class TestCleanLink:
    def test_everything_delivered_in_order(self):
        link, deliveries = drive(ChannelPlan(latency=8.0), cells=200)
        assert len(deliveries) == 200
        assert link.stats.cells_lost == 0
        arrivals = [t for t, _, _ in deliveries]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] == 8.0


class TestImpairedLink:
    def test_loss_counted(self):
        link, deliveries = drive(ChannelPlan(seed=2, loss_rate=0.1))
        assert link.stats.cells_lost > 0
        assert len(deliveries) == 2_000 - link.stats.cells_lost

    def test_bit_errors_counted_and_applied(self):
        plan = ChannelPlan(seed=3, bit_errors=(0.05, 0.25, 0.0, 0.01))
        link, deliveries = drive(plan)
        assert link.stats.cells_errored > 0
        assert link.stats.bits_flipped >= link.stats.cells_errored
        mutated = sum(
            1 for _, payload, _ in deliveries
            if len(set(payload)) > 1  # sent payloads are uniform bytes
        )
        assert mutated > 0
        assert all(len(p) == 48 for _, p, _ in deliveries)

    def test_overflow_drops(self):
        plan = ChannelPlan(queue_capacity=4, queue_service=5.0)
        link, deliveries = drive(plan, cells=100)
        assert link.stats.cells_overflowed > 0
        assert len(deliveries) < 100

    def test_duplicates_arrive_later(self):
        plan = ChannelPlan(seed=5, duplicate_rate=0.3, duplicate_lag=3.0)
        link, deliveries = drive(plan, cells=500)
        assert link.stats.cells_duplicated > 0
        assert len(deliveries) == 500 + link.stats.cells_duplicated

    def test_stats_to_dict(self):
        link, _ = drive(named_channel_plan("bursty-link", 7), cells=300)
        payload = link.stats.to_dict()
        assert payload["cells_sent"] == 300
        assert set(payload) >= {"cells_lost", "cells_errored", "bits_flipped"}


class TestDeterminism:
    def test_same_plan_same_trajectory(self):
        for name in ("lossy-link", "bursty-link", "reordering-link",
                     "congested-queue"):
            plan = named_channel_plan(name, seed=13)
            _, a = drive(plan, cells=800)
            _, b = drive(plan, cells=800)
            assert a == b, name
