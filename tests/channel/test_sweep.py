"""Tests for the channel sweep: workers-invariance, journal, store."""

from repro.channel.arq import ArqConfig, ChannelReport
from repro.channel.plan import ChannelPlan, named_channel_plan
from repro.channel.sweep import channel_fingerprint, run_channel_sweep
from repro.core.supervisor import RunHealth
from repro.protocols.packetizer import PacketizerConfig
from repro.store.journal import ShardJournal
from repro.store.runner import RunStore

from tests.conftest import make_filesystem


def small_fs():
    return make_filesystem(
        [("english", 9_000), ("c-source", 8_000), ("zero-heavy", 7_000)],
        name="channel-fs",
    )


class TestWorkersInvariance:
    def test_report_and_events_identical_across_worker_counts(self):
        fs = small_fs()
        plan = named_channel_plan("bursty-link", seed=5)
        sequential_events, pooled_events = [], []
        sequential = run_channel_sweep(
            fs, plan, events_out=sequential_events, workers=1
        )
        pooled = run_channel_sweep(
            fs, plan, events_out=pooled_events, workers=4
        )
        assert sequential.to_dict() == pooled.to_dict()
        assert sequential_events == pooled_events

    def test_events_carry_file_boundaries(self):
        fs = small_fs()
        events = []
        run_channel_sweep(fs, named_channel_plan("clean"), events_out=events)
        boundaries = [e for e in events if e["event"] == "file"]
        assert [b["index"] for b in boundaries] == [0, 1, 2]


class TestMergedReport:
    def test_files_and_frames_sum(self):
        fs = small_fs()
        plan = named_channel_plan("lossy-link", seed=2)
        merged = run_channel_sweep(fs, plan)
        assert merged.files == len(fs)
        assert merged.frames > 0
        assert merged.delivered_clean == merged.frames

    def test_max_files_truncates(self):
        fs = small_fs()
        merged = run_channel_sweep(
            fs, named_channel_plan("clean"), max_files=1
        )
        assert merged.files == 1

    def test_notes_fold_into_health(self):
        fs = small_fs()
        plan = ChannelPlan(seed=1, loss_rate=0.9)
        health = RunHealth()
        merged = run_channel_sweep(
            fs, plan, arq=ArqConfig(budget=0, timeout=8.0), health=health
        )
        assert merged.frames_failed > 0
        assert health.eventful
        assert health.degradations


class TestFingerprint:
    def test_tracks_every_knob(self):
        fs = small_fs()
        files = list(fs)
        plan = named_channel_plan("bursty-link", seed=5)
        arq = ArqConfig()
        config = PacketizerConfig()
        base = channel_fingerprint(files, plan, arq, config, True)
        assert base == channel_fingerprint(files, plan, arq, config, True)
        assert base != channel_fingerprint(files, plan, arq, config, False)
        assert base != channel_fingerprint(
            files, named_channel_plan("bursty-link", seed=6), arq, config,
            True,
        )
        assert base != channel_fingerprint(
            files, plan, ArqConfig(kind="stop-and-wait"), config, True
        )


class TestJournal:
    def test_resume_skips_completed_shards(self, tmp_path):
        fs = small_fs()
        plan = named_channel_plan("lossy-link", seed=3)
        path = tmp_path / "channel.journal"

        direct = run_channel_sweep(fs, plan)

        # Simulate an interrupted sweep: checkpoint the first file's
        # shard by hand (exactly what the sweep records), then resume.
        from repro.channel.arq import run_channel_transfer
        from repro.channel.sweep import _shard_key

        files = list(fs)
        arq, config = ArqConfig(), PacketizerConfig()
        fingerprint = channel_fingerprint(files, plan, arq, config, True)
        journal = ShardJournal(path)
        journal.open_run(fingerprint, total=len(files))
        journal.record(
            _shard_key(fingerprint, 0, files[0].data),
            run_channel_transfer(files[0].data, plan, arq=arq,
                                 config=config),
        )
        assert path.exists()

        resumed_journal = ShardJournal(path)
        resumed = run_channel_sweep(
            fs, plan, arq=arq, config=config, journal=resumed_journal,
            resume=True,
        )
        assert resumed.to_dict() == direct.to_dict()
        assert not path.exists()  # completed sweep cleans up

    def test_journal_codec_revives_channel_reports(self, tmp_path):
        path = tmp_path / "codec.journal"
        journal = ShardJournal(path)
        journal.open_run("fp", total=1)
        report = ChannelReport(files=1, frames=4, delivered_clean=4,
                               ticks=10.5, notes=["n"])
        journal.record("shard-0", report)

        fresh = ShardJournal(path)
        entries = fresh.open_run("fp", resume=True, codec=ChannelReport)
        assert entries == {"shard-0": report}
        assert isinstance(entries["shard-0"], ChannelReport)


class TestStoreCache:
    def test_cached_rerun_is_bit_identical(self, tmp_path):
        fs = small_fs()
        plan = named_channel_plan("bursty-link", seed=4)
        store = RunStore(tmp_path / "store")
        cold = run_channel_sweep(fs, plan, store=store)
        warm = run_channel_sweep(fs, plan, store=store)
        assert cold.to_dict() == warm.to_dict()
        direct = run_channel_sweep(fs, plan)
        assert warm.to_dict() == direct.to_dict()

    def test_recording_events_skips_the_cache(self, tmp_path):
        fs = small_fs()
        plan = named_channel_plan("lossy-link", seed=4)
        store = RunStore(tmp_path / "store")
        run_channel_sweep(fs, plan, store=store)
        events = []
        traced = run_channel_sweep(
            fs, plan, store=store, events_out=events
        )
        assert events  # a cached shard would have produced no events
        direct = run_channel_sweep(fs, plan)
        assert traced.to_dict() == direct.to_dict()
