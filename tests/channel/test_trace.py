"""Tests for channel traces: integrity, replay, tamper detection."""

import json

import pytest

from repro.channel.arq import ArqConfig
from repro.channel.plan import named_channel_plan
from repro.channel.sweep import run_channel_sweep
from repro.channel.trace import (
    TraceError,
    build_channel_trace,
    read_channel_trace,
    replay_channel_trace,
    write_channel_trace,
)
from repro.corpus.profiles import build_filesystem
from repro.protocols.packetizer import PacketizerConfig

CORPUS = {"profile": "nsc05", "bytes": 50_000, "seed": 2}


def record(plan_name="lossy-link", use_crc=True):
    fs = build_filesystem(CORPUS["profile"], CORPUS["bytes"], CORPUS["seed"])
    plan = named_channel_plan(plan_name, seed=6)
    arq = ArqConfig()
    config = PacketizerConfig()
    events = []
    report = run_channel_sweep(
        fs, plan, arq=arq, config=config, use_crc=use_crc,
        events_out=events,
    )
    return build_channel_trace(
        plan, arq, config, use_crc, CORPUS, events, report
    )


class TestRoundTrip:
    def test_write_read(self, tmp_path):
        payload = record()
        path = tmp_path / "run.trace"
        write_channel_trace(path, payload)
        assert read_channel_trace(path) == payload

    def test_replay_reproduces_every_verdict(self, tmp_path):
        payload = record()
        result = replay_channel_trace(payload)
        assert result.identical, result.mismatches
        assert result.report.to_dict() == payload["report"]

    def test_replay_is_workers_independent(self):
        payload = record()
        result = replay_channel_trace(payload, workers=4)
        assert result.identical, result.mismatches


class TestTampering:
    def test_flipped_report_counter_detected(self, tmp_path):
        payload = record()
        path = tmp_path / "tampered.trace"
        payload["report"]["delivered_clean"] += 1
        write_channel_trace(path, payload)
        with pytest.raises(TraceError, match="digest"):
            read_channel_trace(path)

    def test_edited_event_detected(self, tmp_path):
        payload = record()
        payload["events"][-1] = {"t": 0.0, "event": "forged"}
        path = tmp_path / "tampered.trace"
        write_channel_trace(path, payload)
        with pytest.raises(TraceError, match="digest"):
            read_channel_trace(path)

    def test_wrong_schema_rejected(self, tmp_path):
        payload = record()
        payload["schema"] = "repro-channel-trace/999"
        path = tmp_path / "schema.trace"
        write_channel_trace(path, payload)
        with pytest.raises(TraceError, match="schema"):
            read_channel_trace(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.trace"
        path.write_text("not json at all {")
        with pytest.raises(TraceError, match="unreadable"):
            read_channel_trace(path)

    def test_missing_section_rejected(self, tmp_path):
        payload = record()
        del payload["events"]
        path = tmp_path / "partial.trace"
        path.write_text(json.dumps(payload))
        with pytest.raises(TraceError, match="events"):
            read_channel_trace(path)


class TestDivergenceDetection:
    def test_mutated_recorded_events_diverge_on_replay(self):
        # Re-digest after mutation so the divergence (not the digest)
        # is what the replayer reports.
        from repro.channel.trace import _digest

        payload = record()
        payload["events"][-1] = dict(payload["events"][-1])
        payload["events"][-1]["t"] = 999999.0
        payload["digest"] = _digest(payload)
        result = replay_channel_trace(payload)
        assert not result.identical
        assert result.mismatches
        assert "diverged" in result.describe()
