"""Tests for the impairment processes: statistics and determinism."""

import numpy as np

from repro.channel.impairments import (
    BoundedQueue,
    CellLoss,
    DelayProcess,
    DuplicateProcess,
    GilbertChain,
    GilbertElliottBitErrors,
)
from repro.channel.plan import ChannelPlan


class TestGilbertChain:
    def test_bursts_cluster(self):
        chain = GilbertChain(np.random.default_rng(1), 0.05, 0.25)
        states = [chain.step() for _ in range(20_000)]
        bad = sum(states)
        # Stationary bad share = p_enter / (p_enter + p_exit) ~ 1/6.
        assert 0.10 < bad / len(states) < 0.25
        # Consecutive bad cells far exceed the independent-loss rate:
        runs = sum(
            1 for a, b in zip(states, states[1:]) if a and b
        )
        assert runs > bad * 0.5  # mean burst length 1/p_exit = 4

    def test_deterministic(self):
        a = GilbertChain(np.random.default_rng(5), 0.1, 0.3)
        b = GilbertChain(np.random.default_rng(5), 0.1, 0.3)
        assert [a.step() for _ in range(500)] == [b.step() for _ in range(500)]


class TestCellLoss:
    def test_rate_matches_plan(self):
        loss = CellLoss(ChannelPlan(seed=2, loss_rate=0.1))
        lost = sum(loss.lost() for _ in range(20_000))
        assert 0.08 < lost / 20_000 < 0.12

    def test_clean_plan_never_loses(self):
        loss = CellLoss(ChannelPlan())
        assert not any(loss.lost() for _ in range(1_000))


class TestBitErrors:
    def test_flips_only_in_bad_state(self):
        plan = ChannelPlan(seed=4, bit_errors=(0.05, 0.25, 0.0, 0.02))
        process = GilbertElliottBitErrors(plan)
        payload = bytes(48)
        corrupted = flipped_total = 0
        for _ in range(5_000):
            mutated, flipped = process.corrupt(payload)
            if flipped:
                corrupted += 1
                flipped_total += flipped
                assert mutated != payload
                assert len(mutated) == len(payload)
            else:
                assert mutated == payload
        assert corrupted > 0
        assert flipped_total >= corrupted

    def test_deterministic(self):
        plan = ChannelPlan(seed=4, bit_errors=(0.05, 0.25, 0.001, 0.02))
        a = GilbertElliottBitErrors(plan)
        b = GilbertElliottBitErrors(plan)
        payload = bytes(range(48))
        for _ in range(300):
            assert a.corrupt(payload) == b.corrupt(payload)


class TestBoundedQueue:
    def test_unbounded_passthrough(self):
        queue = BoundedQueue(ChannelPlan())
        assert queue.admit(3.0) == 3.0

    def test_overflow_drops(self):
        plan = ChannelPlan(queue_capacity=2, queue_service=10.0)
        queue = BoundedQueue(plan)
        assert queue.admit(0.0) == 10.0
        assert queue.admit(0.0) == 20.0
        assert queue.admit(0.0) is None  # full
        assert queue.admit(10.5) is not None  # one departed

    def test_departures_fifo(self):
        plan = ChannelPlan(queue_capacity=8, queue_service=2.0)
        queue = BoundedQueue(plan)
        first = queue.admit(0.0)
        second = queue.admit(0.5)
        assert second > first


class TestDelayAndDuplicates:
    def test_latency_always_paid(self):
        delay = DelayProcess(ChannelPlan(latency=8.0))
        arrival, reordered = delay.arrival(2.0)
        assert arrival == 10.0
        assert not reordered

    def test_reorder_holds_back(self):
        plan = ChannelPlan(seed=6, jitter=0.5, reorder_rate=0.5,
                           reorder_span=20.0)
        delay = DelayProcess(plan)
        results = [delay.arrival(0.0) for _ in range(500)]
        assert any(reordered for _, reordered in results)
        held = [t for t, reordered in results if reordered]
        prompt = [t for t, reordered in results if not reordered]
        assert max(held) > max(prompt)

    def test_duplicates_at_rate(self):
        process = DuplicateProcess(ChannelPlan(seed=3, duplicate_rate=0.2))
        count = sum(process.duplicated() for _ in range(10_000))
        assert 0.17 < count / 10_000 < 0.23


class TestStreamIndependence:
    def test_jitter_does_not_shift_loss(self):
        # The decisive property: enabling one impairment must not
        # change another's decision stream.
        quiet = ChannelPlan(seed=11, loss_rate=0.1)
        noisy = ChannelPlan(seed=11, loss_rate=0.1, jitter=5.0,
                            duplicate_rate=0.3)
        a, b = CellLoss(quiet), CellLoss(noisy)
        assert [a.lost() for _ in range(2_000)] == [
            b.lost() for _ in range(2_000)
        ]
