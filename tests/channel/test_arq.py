"""Tests for the ARQ layer: recovery, budgets, graceful degradation."""

import pytest

from repro.channel.arq import (
    ARQ_KINDS,
    ArqConfig,
    ChannelReport,
    NOTE_BUDGET,
    run_channel_transfer,
)
from repro.channel.plan import ChannelPlan, named_channel_plan
from repro.core.supervisor import RunHealth
from repro.corpus.generators import generate

DATA = generate("english", 12_000, 1)


class TestArqConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ArqConfig(kind="hybrid")
        with pytest.raises(ValueError):
            ArqConfig(window=0)
        with pytest.raises(ValueError):
            ArqConfig(backoff=0.5)
        with pytest.raises(ValueError):
            ArqConfig(max_timeout=1.0, timeout=2.0)

    def test_round_trip(self):
        config = ArqConfig(kind="selective-repeat", window=4, budget=3)
        assert ArqConfig.from_dict(config.to_dict()) == config

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            ArqConfig.from_dict({"kind": "go-back-n", "nagle": True})


class TestChannelReport:
    def test_add_merges_counters_and_notes(self):
        a = ChannelReport(files=1, frames=10, transmissions=12,
                          notes=["x"])
        b = ChannelReport(files=1, frames=5, transmissions=5,
                          notes=["x", "y"])
        merged = a + b
        assert merged.files == 2
        assert merged.frames == 15
        assert merged.transmissions == 17
        assert merged.notes == ["x", "y"]

    def test_json_round_trip(self):
        report = ChannelReport(frames=3, delivered_clean=2,
                               frames_failed=1, ticks=42.5,
                               notes=["degraded"])
        assert ChannelReport.from_json(report.to_json()) == report

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            ChannelReport.from_dict({"frames": 1, "bogus": 2})

    def test_degraded_property(self):
        assert not ChannelReport(frames=1, delivered_clean=1).degraded
        assert ChannelReport(frames_failed=1).degraded
        assert ChannelReport(delivered_corrupted=1).degraded


class TestCleanChannel:
    def test_one_transmission_per_frame(self):
        report = run_channel_transfer(DATA, ChannelPlan())
        assert report.delivered_clean == report.frames
        assert report.transmissions == report.frames
        assert report.retransmissions == 0
        assert report.frames_failed == 0
        assert report.delivered_corrupted == 0
        assert not report.degraded
        assert report.ticks > 0


class TestRecovery:
    @pytest.mark.parametrize("kind", ARQ_KINDS)
    def test_every_kind_recovers_a_lossy_link(self, kind):
        plan = ChannelPlan(seed=3, loss_rate=0.08)
        report = run_channel_transfer(DATA, plan, arq=ArqConfig(kind=kind))
        assert report.delivered_clean == report.frames, kind
        assert report.retransmissions > 0, kind
        assert report.frames_failed == 0, kind

    def test_checksum_verdicts_drive_recovery(self):
        # Bit errors never *lose* cells; only checksum rejections make
        # the receiver discard frames, so every retransmission here was
        # triggered by a checksum verdict.
        plan = ChannelPlan(seed=5, bit_errors=(0.08, 0.2, 0.0, 0.01))
        report = run_channel_transfer(DATA, plan)
        assert report.cells_lost == 0
        assert report.frames_rejected > 0
        assert report.retransmissions > 0
        assert report.delivered_clean == report.frames

    def test_go_back_n_discards_out_of_order(self):
        plan = ChannelPlan(seed=3, loss_rate=0.08)
        gbn = run_channel_transfer(
            DATA, plan, arq=ArqConfig(kind="go-back-n")
        )
        srp = run_channel_transfer(
            DATA, plan, arq=ArqConfig(kind="selective-repeat")
        )
        assert gbn.out_of_order > 0
        assert srp.out_of_order == 0
        assert gbn.transmissions > srp.transmissions

    def test_stop_and_wait_serializes(self):
        plan = ChannelPlan()
        report = run_channel_transfer(
            DATA, plan, arq=ArqConfig(kind="stop-and-wait")
        )
        assert report.delivered_clean == report.frames
        # One frame in flight at a time takes strictly longer than the
        # windowed disciplines on the same clean link.
        windowed = run_channel_transfer(DATA, plan)
        assert report.ticks > windowed.ticks


class TestGracefulDegradation:
    def test_budget_exhaustion_never_hangs(self):
        # A brutal link and a tiny budget: frames are abandoned, the
        # session still terminates with a partial report.
        plan = ChannelPlan(seed=9, loss_rate=0.6)
        health = RunHealth()
        report = run_channel_transfer(
            DATA, plan, arq=ArqConfig(budget=1, timeout=16.0),
            health=health,
        )
        assert report.frames_failed > 0
        assert report.degraded
        assert NOTE_BUDGET in report.notes
        assert health.eventful
        assert any("budget" in note for note in health.degradations)
        # Abandoned or not, every frame was resolved.
        assert (
            report.delivered_clean + report.delivered_corrupted
            + report.frames_failed >= report.frames
        )

    def test_total_blackout_terminates(self):
        plan = ChannelPlan(seed=1, loss_rate=1.0)
        report = run_channel_transfer(
            DATA, plan, arq=ArqConfig(budget=2, timeout=8.0)
        )
        assert report.frames_failed == report.frames
        assert report.delivered_clean == 0
        assert report.degraded

    def test_overflow_storm_terminates(self):
        plan = ChannelPlan(seed=2, queue_capacity=2, queue_service=50.0)
        report = run_channel_transfer(
            DATA, plan, arq=ArqConfig(budget=2, timeout=16.0)
        )
        assert report.cells_overflowed > 0
        assert report.frames_failed + report.delivered_clean >= report.frames

    def test_notes_are_canonical_and_deduped(self):
        plan = ChannelPlan(seed=9, loss_rate=0.9)
        report = run_channel_transfer(
            DATA, plan, arq=ArqConfig(budget=0, timeout=8.0)
        )
        assert report.notes.count(NOTE_BUDGET) == 1


class TestSilentCorruption:
    def test_weak_checksum_leaks_under_splices(self):
        # The congested queue drops cell runs, splicing adjacent
        # packets -- the paper's error model.  Without the CRC, the
        # TCP checksum misses some splices: silent corruption.
        plan = named_channel_plan("congested-queue", seed=3)
        data = generate("zero-heavy", 40_000, 3)
        report = run_channel_transfer(data, plan, use_crc=False)
        assert report.delivered_corrupted > 0
        assert report.degraded

    def test_crc_stops_the_leak(self):
        plan = named_channel_plan("congested-queue", seed=3)
        data = generate("zero-heavy", 40_000, 3)
        report = run_channel_transfer(data, plan, use_crc=True)
        assert report.delivered_corrupted == 0


class TestDeterminism:
    @pytest.mark.parametrize(
        "name", ["clean", "lossy-link", "bursty-link", "reordering-link",
                 "congested-queue"]
    )
    def test_trace_is_bit_identical(self, name):
        plan = named_channel_plan(name, seed=21)
        first_events, second_events = [], []
        first = run_channel_transfer(DATA, plan, trace_events=first_events)
        second = run_channel_transfer(DATA, plan, trace_events=second_events)
        assert first_events == second_events
        assert first.to_dict() == second.to_dict()

    def test_trace_records_verdicts(self):
        plan = ChannelPlan(seed=5, loss_rate=0.1)
        events = []
        run_channel_transfer(DATA, plan, trace_events=events)
        kinds = {entry["event"] for entry in events}
        assert {"send", "deliver"} <= kinds
        delivers = [e for e in events if e["event"] == "deliver"]
        assert all("clean" in e for e in delivers)
