"""Tests for the channel-* experiment family."""

from repro.experiments.channel_tables import (
    channel_arq,
    channel_goodput,
    channel_regimes,
)
from repro.experiments.markdown import DEFAULT_SECTIONS
from repro.experiments.registry import EXPERIMENTS, run_experiment

FS_BYTES = 60_000


class TestRegistry:
    def test_family_registered(self):
        for experiment_id in ("channel-regimes", "channel-goodput",
                              "channel-arq"):
            assert experiment_id in EXPERIMENTS

    def test_markdown_sections_include_family(self):
        ids = [i for _, section in DEFAULT_SECTIONS for i in section]
        assert "channel-regimes" in ids
        assert "channel-goodput" in ids
        assert "channel-arq" in ids

    def test_run_experiment_forwards_kwargs(self):
        report = run_experiment("channel-goodput", fs_bytes=FS_BYTES,
                                seed=3, loss_rates=(0.0, 0.05))
        assert report.experiment_id == "channel-goodput"
        assert len(report.data["rows"]) == 2


class TestChannelGoodput:
    def test_goodput_monotone_in_badness(self):
        report = channel_goodput(fs_bytes=FS_BYTES,
                                 loss_rates=(0.0, 0.1))
        clean, lossy = report.data["rows"]
        assert clean["goodput"] > lossy["goodput"]
        assert lossy["retransmissions"] > clean["retransmissions"]
        assert clean["delivery_ratio"] == 1.0

    def test_deterministic(self):
        a = channel_goodput(fs_bytes=FS_BYTES, loss_rates=(0.05,))
        b = channel_goodput(fs_bytes=FS_BYTES, loss_rates=(0.05,))
        assert a.text == b.text
        assert a.data == b.data


class TestChannelArq:
    def test_compares_all_disciplines(self):
        report = channel_arq(fs_bytes=FS_BYTES)
        kinds = [row["arq"] for row in report.data["rows"]]
        assert kinds == ["stop-and-wait", "go-back-n", "selective-repeat"]
        gbn = report.data["rows"][1]
        srp = report.data["rows"][2]
        # Go-back-N always retransmits at least as much as
        # selective-repeat on the same link.
        assert gbn["transmissions"] >= srp["transmissions"]


class TestChannelRegimes:
    def test_rows_cover_matrix(self):
        report = channel_regimes(fs_bytes=FS_BYTES)
        rows = report.data["rows"]
        regimes = {row["regime"] for row in rows}
        algorithms = {row["algorithm"] for row in rows}
        assert regimes == {"clean", "lossy-link", "bursty-link",
                           "congested-queue"}
        assert algorithms == {"tcp", "fletcher255", "fletcher256"}
        clean_rows = [r for r in rows if r["regime"] == "clean"]
        assert all(r["silent_corruption_rate"] == 0 for r in clean_rows)
