"""Tests for ChannelPlan: validation, serialization, derivation."""

import pytest

from repro.channel.plan import (
    ChannelPlan,
    NAMED_CHANNEL_PLANS,
    channel_plan_names,
    derive_seed,
    named_channel_plan,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", "b") == derive_seed(7, "a", "b")

    def test_streams_independent(self):
        assert derive_seed(7, "loss") != derive_seed(7, "jitter")
        assert derive_seed(7, "loss") != derive_seed(8, "loss")


class TestValidation:
    def test_rates_bounded(self):
        with pytest.raises(ValueError):
            ChannelPlan(loss_rate=1.5)
        with pytest.raises(ValueError):
            ChannelPlan(duplicate_rate=-0.1)

    def test_burst_tuple_shape(self):
        with pytest.raises(ValueError):
            ChannelPlan(burst_loss=(0.5,))
        plan = ChannelPlan(burst_loss=[0.1, 0.5])
        assert plan.burst_loss == (0.1, 0.5)

    def test_bit_error_tuple_shape(self):
        with pytest.raises(ValueError):
            ChannelPlan(bit_errors=(0.1, 0.5))
        plan = ChannelPlan(bit_errors=[0.1, 0.5, 0.0, 0.01])
        assert plan.bit_errors == (0.1, 0.5, 0.0, 0.01)

    def test_queue_capacity_positive(self):
        with pytest.raises(ValueError):
            ChannelPlan(queue_capacity=0)


class TestSerialization:
    def test_round_trip(self):
        plan = named_channel_plan("bursty-link", seed=9)
        clone = ChannelPlan.from_dict(plan.to_dict())
        assert clone == plan
        assert clone.fingerprint() == plan.fingerprint()

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            ChannelPlan.from_dict({"loss_rate": 0.1, "nope": 1})

    def test_fingerprint_tracks_content(self):
        a = ChannelPlan(loss_rate=0.05)
        b = ChannelPlan(loss_rate=0.06)
        assert a.fingerprint() != b.fingerprint()


class TestNamedPlans:
    def test_names_sorted_and_complete(self):
        assert channel_plan_names() == sorted(NAMED_CHANNEL_PLANS)
        for expected in ("clean", "lossy-link", "bursty-link",
                         "reordering-link", "congested-queue"):
            assert expected in channel_plan_names()

    def test_named_plan_instantiates(self):
        plan = named_channel_plan("congested-queue", seed=3)
        assert plan.name == "congested-queue"
        assert plan.seed == 3
        assert plan.queue_capacity == 16

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            named_channel_plan("no-such-link")
