"""Tests for the discrete-event queue's ordering guarantees."""

import pytest

from repro.channel.events import EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(5.0, "b")
        q.push(1.0, "a")
        q.push(3.0, "c")
        assert [q.pop().kind for _ in range(3)] == ["a", "c", "b"]

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        for kind in ("first", "second", "third"):
            q.push(2.0, kind)
        assert [q.pop().kind for _ in range(3)] == ["first", "second", "third"]

    def test_payload_never_compared(self):
        # Identical (time, seq) can't happen; payloads may be
        # uncomparable objects and the heap must not care.
        q = EventQueue()
        q.push(1.0, "x", object())
        q.push(1.0, "y", object())
        assert q.pop().kind == "x"
        assert q.pop().kind == "y"

    def test_peek_and_len(self):
        q = EventQueue()
        assert q.peek_time() is None
        assert not q
        q.push(4.0, "later")
        q.push(2.0, "sooner")
        assert q.peek_time() == 2.0
        assert len(q) == 2
        q.pop()
        assert q.peek_time() == 4.0

    def test_rejects_negative_time(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(-1.0, "bad")

    def test_payload_carried_through(self):
        q = EventQueue()
        q.push(1.0, "cell", b"data", True)
        event = q.pop()
        assert event.payload == (b"data", True)
