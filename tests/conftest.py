"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.filesystem import Filesystem, SyntheticFile
from repro.corpus.generators import generate
from repro.protocols.packetizer import PacketizerConfig


@pytest.fixture(autouse=True)
def _isolated_cache_root(tmp_path_factory, monkeypatch):
    """Point the artifact store (and sweep journals) at a tmp root.

    CLI runs journal sweeps by default; without this, in-process
    ``main([...])`` calls in tests would write checkpoints under the
    real ``~/.cache/repro-checksums``.  Tests that pin the env-var
    behaviour override the variable themselves.
    """
    monkeypatch.setenv(
        "REPRO_CHECKSUMS_CACHE",
        str(tmp_path_factory.mktemp("cache-root")),
    )


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def base_config():
    return PacketizerConfig()


def make_filesystem(kinds_and_sizes, seed=7, name="test-fs"):
    """Build a small filesystem from (kind, size) pairs."""
    fs = Filesystem(name)
    rng = np.random.default_rng(seed)
    for index, (kind, size) in enumerate(kinds_and_sizes):
        fs.add(SyntheticFile("f%d.%s" % (index, kind), generate(kind, size, rng), kind))
    return fs


@pytest.fixture
def small_mixed_fs():
    return make_filesystem(
        [("english", 8_000), ("gmon", 6_000), ("c-source", 8_000), ("zero-heavy", 6_000)]
    )
