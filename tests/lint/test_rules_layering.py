"""REP301 / REP302 / REP303: the layering rules."""

from tests.lint.conftest import active_rules


class TestCliFacadeOnly:
    def test_deep_import_in_cli_is_flagged(self, lint):
        result = lint({
            "repro/cli.py": """
                from repro.store.runner import RunStore

                def main():
                    return RunStore
            """,
        }, rules=["REP301"])
        assert active_rules(result) == ["REP301"]
        assert "repro.api" in result.active[0].message

    def test_facade_import_is_clean(self, lint):
        result = lint({
            "repro/cli.py": """
                from repro.api import run_experiment

                def main():
                    return run_experiment
            """,
        }, rules=["REP301"])
        assert result.active == []

    def test_lint_tooling_import_is_clean(self, lint):
        result = lint({
            "repro/cli.py": """
                from repro.lint import run_lint

                def main():
                    return run_lint
            """,
        }, rules=["REP301"])
        assert result.active == []

    def test_bare_package_import_is_flagged(self, lint):
        result = lint({
            "repro/cli.py": """
                import repro

                def main():
                    return repro.__version__
            """,
        }, rules=["REP301"])
        assert active_rules(result) == ["REP301"]


class TestPureLayer:
    def test_upward_import_is_flagged(self, lint):
        result = lint({
            "repro/checksums/crc.py": """
                from repro.store.objstore import ObjectStore

                def engine():
                    return ObjectStore
            """,
        }, rules=["REP302"])
        assert active_rules(result) == ["REP302"]

    def test_sibling_import_is_clean(self, lint):
        result = lint({
            "repro/checksums/extra.py": """
                from repro.checksums.fletcher import Fletcher8

                def make():
                    return Fletcher8(255)
            """,
        }, rules=["REP302"])
        assert result.active == []


class TestEagerEngineImport:
    def test_module_scope_engine_import_in_cold_module_is_flagged(self, lint):
        result = lint({
            "repro/api.py": """
                from repro.core.engine import SpliceEngine

                def run():
                    return SpliceEngine
            """,
        }, rules=["REP303"])
        assert active_rules(result) == ["REP303"]

    def test_function_scope_import_is_clean(self, lint):
        result = lint({
            "repro/api.py": """
                def run():
                    from repro.core.engine import SpliceEngine

                    return SpliceEngine
            """,
        }, rules=["REP303"])
        assert result.active == []

    def test_hot_attribute_off_lazy_package_is_flagged(self, lint):
        result = lint({
            "repro/store/warm.py": """
                from repro.core import SpliceEngine

                def run():
                    return SpliceEngine
            """,
        }, rules=["REP303"])
        assert active_rules(result) == ["REP303"]
        assert "hot attribute" in result.active[0].message

    def test_cheap_attribute_off_lazy_package_is_clean(self, lint):
        result = lint({
            "repro/store/warm.py": """
                from repro.core import RunHealth

                def run():
                    return RunHealth
            """,
        }, rules=["REP303"])
        assert result.active == []

    def test_hot_modules_may_import_each_other(self, lint):
        result = lint({
            "repro/core/experiment.py": """
                from repro.core.engine import SpliceEngine

                def run():
                    return SpliceEngine
            """,
        }, rules=["REP303"])
        assert result.active == []
