"""reprolint dogfoods: the repo's own sources pass every rule.

These are the acceptance checks from the PR contract: the CLI exits 0
on the repository (modulo the committed baseline) and exits nonzero on
a fixture tree seeded with one violation per rule.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.lint.engine import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def _cli(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        cwd=str(cwd), env=env, capture_output=True, text=True,
    )


class TestOwnSources:
    def test_src_tree_has_no_active_findings(self):
        result = run_lint([SRC])
        messages = [
            "%s %s %s" % (f.location(), f.rule, f.message)
            for f in result.active
        ]
        assert messages == []
        assert result.files_scanned > 60

    def test_cli_exits_zero_from_repo_root(self):
        proc = _cli(["lint", "src"], cwd=REPO_ROOT)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_committed_baseline_is_loadable_and_empty(self):
        from repro.lint.baseline import load_baseline

        assert load_baseline(REPO_ROOT / ".reprolint-baseline.json") == set()


#: One violation per rule (REP000 syntax errors included) -- the
#: acceptance fixture from the PR contract.
_SEEDED = {
    "repro/core/sweep.py": (
        "import random\n"
        "\n"
        "def pick(items):\n"
        "    return random.choice(items)\n"  # REP101
    ),
    "repro/store/meta.py": (
        "import os\n"
        "import time\n"
        "\n"
        "def stamp_and_swap(tmp, final):\n"
        "    t = time.time()\n"  # REP102
        "    os.replace(tmp, final)\n"  # REP401
        "    return t\n"
    ),
    "repro/telemetry/view.py": (
        "def to_dict(data):\n"
        "    return {k: v for k, v in data.items()}\n"  # REP103
    ),
    "repro/core/runner.py": (
        "def run(pool, shard):\n"
        "    return pool.submit(lambda: shard)\n"  # REP201
    ),
    "repro/core/shards.py": (
        "from repro.telemetry import core as telemetry\n"
        "\n"
        "def work(payload):\n"
        "    telemetry.count('files')\n"  # REP202
        "    return payload\n"
        "\n"
        "def run(pool, payload):\n"
        "    return pool.submit(work, payload)\n"
    ),
    "repro/cli.py": (
        "from repro.store.runner import RunStore\n"  # REP301
        "\n"
        "def main():\n"
        "    return RunStore\n"
    ),
    "repro/checksums/crc.py": (
        "from repro.store.objstore import ObjectStore\n"  # REP302
        "\n"
        "def engine():\n"
        "    return ObjectStore\n"
    ),
    "repro/api.py": (
        "from repro.core.engine import SpliceEngine\n"  # REP303
        "\n"
        "def run():\n"
        "    return SpliceEngine\n"
    ),
    "repro/store/journal.py": (
        "def checkpoint(path, blob):\n"
        "    path.write_bytes(blob)\n"  # REP402
    ),
    "repro/store/backends/bad.py": (
        "class RottenBackend:\n"
        "    def get(self, key):\n"
        "        return self._frames[key]\n"  # REP403
    ),
    "repro/store/net.py": (
        "def fetch(client, path):\n"
        "    last = None\n"
        "    for _ in range(2):\n"
        "        try:\n"
        "            return client.request(path)\n"
        "        except OSError as exc:\n"  # REP404
        "            last = exc\n"
        "    raise last\n"
    ),
    "repro/core/engine.py": (
        "def verdicts(cells, engine):\n"
        "    out = []\n"
        "    for cell in cells:\n"
        "        out.append(engine.compute(bytes(cell)))\n"  # REP304
        "    return out\n"
    ),
    "repro/checksums/registry.py": (
        "class BadSum:\n"
        "    name = 'bad'\n"
        "    width = 16\n"
        "\n"
        "    def compute(self, data):\n"
        "        return 0\n"
        "\n"
        "\n"
        "_FACTORIES = {\n"
        "    'bad': BadSum,\n"
        "}\n"  # REP501
    ),
    "repro/analysis/helpers.py": (
        "import time\n"
        "\n"
        "def grab_clock():\n"
        "    return time.time()\n"
    ),
    "repro/analysis/export.py": (
        "from repro.analysis.helpers import grab_clock\n"
        "\n"
        "def to_payload(rows):\n"
        "    return {'rows': rows, 'at': grab_clock()}\n"  # REP111
    ),
    "repro/core/factory.py": (
        "def make_worker():\n"
        "    def worker(item):\n"
        "        return item\n"
        "    return worker\n"
    ),
    "repro/core/dispatch.py": (
        "from repro.core.factory import make_worker\n"
        "\n"
        "WORKER = make_worker()\n"
        "\n"
        "def run(pool, shard):\n"
        "    return pool.submit(WORKER, shard)\n"  # REP211
    ),
    "repro/store/conn.py": (
        "def fetch(path):\n"
        "    client = connect(path)\n"  # REP411
        "    data = client.request(path)\n"
        "    client.close()\n"
        "    return data\n"
    ),
    "repro/core/quiet.py": (
        "def add(a, b):\n"
        "    return a + b  # reprolint: disable=REP101\n"  # REP601
    ),
}

_EXPECTED_RULES = {
    "REP101", "REP102", "REP103", "REP111", "REP201", "REP202",
    "REP211", "REP301", "REP302", "REP303", "REP304", "REP401",
    "REP402", "REP403", "REP404", "REP411", "REP501", "REP601",
}


def _write_seeded(root):
    for rel, source in _SEEDED.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
        parent = path.parent
        while parent != root:
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
            parent = parent.parent


class TestSeededFixture:
    def test_engine_reports_every_rule(self, tmp_path):
        root = tmp_path / "seeded"
        _write_seeded(root)
        result = run_lint([root])
        assert _EXPECTED_RULES <= {f.rule for f in result.active}
        assert result.exit_code == 1

    def test_committed_contract_trips_rep311_on_the_fixture(self, tmp_path):
        # The REP302 seed (checksums importing the store) is also an
        # illegal edge under the committed layer contract.
        from repro.lint.config import load_contract

        root = tmp_path / "seeded"
        _write_seeded(root)
        contract = load_contract(REPO_ROOT / ".reprolint.toml")
        result = run_lint([root], rules=["REP311"], contract=contract)
        assert {f.rule for f in result.active} == {"REP311"}

    def test_cli_exits_nonzero_with_parseable_json(self, tmp_path):
        root = tmp_path / "seeded"
        _write_seeded(root)
        proc = _cli(
            ["lint", "--no-baseline", "--format", "json", str(root)],
            cwd=tmp_path,
        )
        assert proc.returncode == 1, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["schema"] == "repro-lint/1"
        reported = set(payload["summary"]["by_rule"])
        assert _EXPECTED_RULES <= reported
