"""REP201 / REP202: the concurrency rules."""

from tests.lint.conftest import active_rules


class TestNonPicklableWorker:
    def test_lambda_submission_is_flagged(self, lint):
        result = lint({
            "repro/core/runner.py": """
                def run(pool, shard):
                    return pool.submit(lambda: shard)
            """,
        }, rules=["REP201"])
        assert active_rules(result) == ["REP201"]
        assert "lambda" in result.active[0].message

    def test_nested_function_submission_is_flagged(self, lint):
        result = lint({
            "repro/core/runner.py": """
                def run(pool, shard):
                    def work():
                        return shard
                    return pool.submit(work)
            """,
        }, rules=["REP201"])
        assert active_rules(result) == ["REP201"]
        assert "nested scope" in result.active[0].message

    def test_module_level_function_is_clean(self, lint):
        result = lint({
            "repro/core/runner.py": """
                def work(shard):
                    return shard

                def run(pool, shard):
                    return pool.submit(work, shard)
            """,
        }, rules=["REP201"])
        assert result.active == []

    def test_bound_method_submission_is_flagged(self, lint):
        result = lint({
            "repro/core/runner.py": """
                class Runner:
                    def work(self, shard):
                        return shard

                    def run(self, pool, shard):
                        return pool.submit(self.work, shard)
            """,
        }, rules=["REP201"])
        assert active_rules(result) == ["REP201"]
        assert "bound method" in result.active[0].message

    def test_attribute_holding_module_function_is_clean(self, lint):
        # The SupervisedPool pattern: ``self.function`` is an instance
        # attribute *holding* a module-level function -- it pickles by
        # value and must not be confused with a bound method.
        result = lint({
            "repro/core/runner.py": """
                def work(shard):
                    return shard

                class Runner:
                    def __init__(self, function=work):
                        self.function = function

                    def run(self, pool, shard):
                        return pool.submit(self.function, shard)
            """,
        }, rules=["REP201"])
        assert result.active == []

    def test_lambda_via_pool_constructor_is_flagged(self, lint):
        result = lint({
            "repro/core/runner.py": """
                from repro.core.supervisor import SupervisedPool

                def run(shard):
                    pool = SupervisedPool(lambda payload: payload)
                    return pool
            """,
        }, rules=["REP201"])
        assert active_rules(result) == ["REP201"]


class TestWorkerSideAccounting:
    def test_telemetry_mutation_in_worker_is_flagged(self, lint):
        result = lint({
            "repro/core/shards.py": """
                from repro.telemetry import core as telemetry

                def work(payload):
                    telemetry.count("files")
                    return payload

                def run(pool, payload):
                    return pool.submit(work, payload)
            """,
        }, rules=["REP202"])
        assert active_rules(result) == ["REP202"]
        assert "parent-side" in result.active[0].message

    def test_health_mutation_in_worker_is_flagged(self, lint):
        result = lint({
            "repro/core/shards.py": """
                def work(payload, health):
                    health.retries += 1
                    return payload

                def run(pool, payload, health):
                    return pool.submit(work, payload, health)
            """,
        }, rules=["REP202"])
        assert active_rules(result) == ["REP202"]

    def test_pure_worker_is_clean(self, lint):
        result = lint({
            "repro/core/shards.py": """
                def work(payload):
                    return {"files": 1, "bytes": len(payload)}

                def run(pool, payload):
                    return pool.submit(work, payload)
            """,
        }, rules=["REP202"])
        assert result.active == []

    def test_parent_side_accounting_is_clean(self, lint):
        # Mutating telemetry in the *parent*, from returned counters,
        # is exactly the supported pattern -- no finding.
        result = lint({
            "repro/core/shards.py": """
                from repro.telemetry import core as telemetry_core

                def work(payload):
                    return {"files": 1}

                def run(pool, payload):
                    future = pool.submit(work, payload)
                    counters = future.result()
                    telemetry_core.current().count(
                        "files", counters["files"]
                    )
                    return counters
            """,
        }, rules=["REP202"])
        assert result.active == []
