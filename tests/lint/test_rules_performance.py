"""REP304: the scalar-hot-loop rule."""

from tests.lint.conftest import active_rules


class TestScalarHotLoop:
    def test_scalar_kernel_in_loop_is_flagged(self, lint):
        result = lint({
            "repro/core/engine.py": """
                def verdicts(cells, engine):
                    out = []
                    for cell in cells:
                        out.append(engine.compute(bytes(cell)))
                    return out
            """,
        }, rules=["REP304"])
        assert active_rules(result) == ["REP304"]
        assert "compute" in result.active[0].message

    def test_underscored_helper_name_is_flagged(self, lint):
        result = lint({
            "repro/core/fragsplice.py": """
                def judge(subsets, packet):
                    missed = 0
                    for subset in subsets:
                        if _verify("tcp", packet):
                            missed += 1
                    return missed
            """,
        }, rules=["REP304"])
        assert active_rules(result) == ["REP304"]

    def test_call_in_while_test_is_flagged(self, lint):
        result = lint({
            "repro/core/engine.py": """
                def drain(engine, queue):
                    while engine.verify(queue.peek()):
                        queue.pop()
            """,
        }, rules=["REP304"])
        assert active_rules(result) == ["REP304"]

    def test_comprehension_inside_loop_is_flagged(self, lint):
        result = lint({
            "repro/core/engine.py": """
                def targets(pairs, engines):
                    for pair in pairs:
                        yield {n: e.compute(pair) for n, e in engines}
            """,
        }, rules=["REP304"])
        assert active_rules(result) == ["REP304"]

    def test_call_outside_loop_is_clean(self, lint):
        result = lint({
            "repro/core/engine.py": """
                def target(engine, frame):
                    return engine.compute(frame)
            """,
        }, rules=["REP304"])
        assert result.active == []

    def test_for_iterable_is_evaluated_once_and_clean(self, lint):
        result = lint({
            "repro/core/engine.py": """
                def spans(engine, frame):
                    for word in word_sums(frame):
                        yield word
            """,
        }, rules=["REP304"])
        assert result.active == []

    def test_batch_kernels_in_loop_are_clean(self, lint):
        result = lint({
            "repro/core/engine.py": """
                def folds(engine, chunks):
                    out = []
                    for chunk in chunks:
                        out.append(engine.process_cells(chunk))
                        out.append(range_word_sums(chunk, 0, 8))
                    return out
            """,
        }, rules=["REP304"])
        assert result.active == []

    def test_cold_module_loop_is_clean(self, lint):
        result = lint({
            "repro/analysis/tables.py": """
                def totals(engine, frames):
                    return [engine.compute(f) for f in frames]
            """,
        }, rules=["REP304"])
        assert result.active == []

    def test_nested_loops_report_once(self, lint):
        result = lint({
            "repro/core/engine.py": """
                def verdicts(pairs, selections, options):
                    out = []
                    for pair in pairs:
                        for selection in selections:
                            out.append(judge_splice_cells(pair, selection, options))
                    return out
            """,
        }, rules=["REP304"])
        assert active_rules(result) == ["REP304"]

    def test_pragma_suppresses_the_reference_path(self, lint):
        result = lint({
            "repro/core/engine.py": """
                def verdicts(cells, engine):
                    out = []
                    for cell in cells:
                        # Conformance baseline.  reprolint: disable=REP304
                        out.append(engine.compute(bytes(cell)))
                    return out
            """,
        }, rules=["REP304"])
        assert result.active == []
        assert result.suppressed == 1
