"""Engine mechanics: pragmas, baseline, reporters, rule selection."""

import json

import pytest

from repro.lint.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import all_rules, run_lint
from repro.lint.reporters import (
    findings_from_json,
    render_json,
    render_markdown,
    render_sarif,
    render_text,
)
from tests.lint.conftest import active_rules

_VIOLATION = """
    import random

    def pick(items):
        return random.choice(items)
"""


class TestRuleRegistry:
    def test_catalogue_covers_every_domain(self):
        rules = all_rules()
        ids = [rule.id for rule in rules]
        assert ids == sorted(ids)
        for expected in ("REP101", "REP102", "REP103", "REP201",
                        "REP202", "REP301", "REP302", "REP303",
                        "REP401", "REP501"):
            assert expected in ids
        for rule in rules:
            assert rule.invariant, "%s has no invariant" % rule.id

    def test_unknown_rule_id_raises_with_valid_ids(self, tree):
        root = tree({"repro/core/a.py": "x = 1\n"})
        with pytest.raises(KeyError) as excinfo:
            run_lint([root], rules=["REP999"])
        message = excinfo.value.args[0]
        assert "unknown rule id(s): REP999" in message
        assert "valid:" in message
        for rule in all_rules():
            assert rule.id in message


class TestSyntaxErrors:
    def test_broken_source_reports_rep000(self, lint):
        result = lint({"repro/core/broken.py": "def oops(:\n"})
        assert active_rules(result) == ["REP000"]
        assert "syntax error" in result.active[0].message


class TestPragmas:
    def test_trailing_pragma_suppresses(self, lint):
        result = lint({
            "repro/core/sweep.py": """
                import random

                def pick(items):
                    return random.choice(items)  # reprolint: disable=REP101
            """,
        }, rules=["REP101"])
        assert result.active == []
        assert result.suppressed == 1

    def test_prose_prefixed_comment_line_pragma_suppresses(self, lint):
        result = lint({
            "repro/core/sweep.py": """
                import random

                def pick(items):
                    # intentional: warm-up noise.  reprolint: disable=REP101
                    return random.choice(items)
            """,
        }, rules=["REP101"])
        assert result.active == []
        assert result.suppressed == 1

    def test_file_pragma_suppresses_everywhere(self, lint):
        result = lint({
            "repro/core/sweep.py": """
                # reprolint: disable-file=REP101
                import random

                def pick(items):
                    return random.choice(items)

                def pick2(items):
                    return random.shuffle(items)
            """,
        }, rules=["REP101"])
        assert result.active == []
        assert result.suppressed == 2

    def test_pragma_for_another_rule_does_not_suppress(self, lint):
        result = lint({
            "repro/core/sweep.py": """
                import random

                def pick(items):
                    return random.choice(items)  # reprolint: disable=REP103
            """,
        }, rules=["REP101"])
        assert active_rules(result) == ["REP101"]


class TestBaseline:
    def test_round_trip_marks_findings_baselined(self, lint, tmp_path):
        files = {"repro/core/sweep.py": _VIOLATION}
        first = lint(files, rules=["REP101"])
        assert first.exit_code == 1

        path = tmp_path / "baseline.json"
        write_baseline(first.findings, path)
        fingerprints = load_baseline(path)
        assert len(fingerprints) == 1

        second = lint(files, rules=["REP101"], baseline=fingerprints)
        assert second.exit_code == 0
        assert [f.rule for f in second.baselined] == ["REP101"]

    def test_fingerprints_survive_line_drift(self, lint, tmp_path):
        first = lint({"repro/core/sweep.py": _VIOLATION}, rules=["REP101"])
        path = tmp_path / "baseline.json"
        write_baseline(first.findings, path)
        fingerprints = load_baseline(path)

        # Same code, pushed down by unrelated edits above it.  (Dedent
        # here: mixing indented and flush lines defeats the fixture's
        # own dedent.)
        import textwrap

        drifted = lint({
            "repro/core/sweep.py":
                "\n\nHEADER = 1\n" + textwrap.dedent(_VIOLATION),
        }, rules=["REP101"], baseline=fingerprints)
        assert drifted.exit_code == 0
        assert len(drifted.baselined) == 1

    def test_duplicate_findings_need_distinct_occurrences(self, lint,
                                                          tmp_path):
        files = {
            "repro/core/sweep.py": """
                import random

                def pick(items):
                    return random.choice(items)

                def pick2(items):
                    return random.choice(items)
            """,
        }
        first = lint(files, rules=["REP101"])
        assert len(first.active) == 2
        path = tmp_path / "baseline.json"
        write_baseline(first.findings, path)
        assert len(load_baseline(path)) == 2

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == set()

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": "bogus/9"}))
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_apply_baseline_returns_matched_fingerprints(self, lint):
        result = lint({"repro/core/sweep.py": _VIOLATION}, rules=["REP101"])
        assert apply_baseline(result.findings, set()) == set()

        fingerprint = result.findings[0].fingerprint(0)
        matched = apply_baseline(result.findings, {fingerprint, "feed"})
        assert matched == {fingerprint}  # stale "feed" not matched


class TestReporters:
    def _result(self, lint):
        return lint({"repro/core/sweep.py": _VIOLATION}, rules=["REP101"])

    def test_text_is_editor_clickable(self, lint):
        result = self._result(lint)
        text = render_text(result)
        assert "repro/core/sweep.py:5:12 REP101 error" in text
        assert "1 finding(s)" in text

    def test_json_round_trips(self, lint):
        result = self._result(lint)
        payload = json.loads(render_json(result))
        assert payload["schema"] == "repro-lint/1"
        assert payload["summary"]["active"] == 1
        findings = findings_from_json(render_json(result))
        assert [f.rule for f in findings] == ["REP101"]
        assert findings[0].path == "repro/core/sweep.py"

    def test_json_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            findings_from_json(json.dumps({"schema": "nope", "findings": []}))

    def test_markdown_has_findings_and_catalogue(self, lint):
        result = self._result(lint)
        text = render_markdown(result)
        assert "| `repro/core/sweep.py:5:12` | REP101 |" in text
        assert "## Rule catalogue" in text
        # The catalogue lists the rules that *ran* (here: just REP101).
        assert "`unseeded-randomness`" in text

    def test_markdown_catalogue_covers_all_rules_when_unrestricted(
            self, lint):
        text = render_markdown(lint({"repro/core/ok.py": "x = 1\n"}))
        for rule_id in ("REP101", "REP111", "REP201", "REP211", "REP301",
                        "REP311", "REP401", "REP411", "REP501", "REP601"):
            assert rule_id in text

    def test_sarif_is_valid_2_1_0(self, lint):
        result = self._result(lint)
        payload = json.loads(render_sarif(result))
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == ["REP101"]  # only the selected rule ran
        entry = run["results"][0]
        assert entry["ruleId"] == "REP101"
        assert entry["level"] == "error"
        assert entry["ruleIndex"] == 0
        region = entry["locations"][0]["physicalLocation"]
        assert region["artifactLocation"]["uri"] == "repro/core/sweep.py"
        assert region["region"]["startLine"] == 5

    def test_sarif_marks_baselined_findings_suppressed(self, lint):
        first = self._result(lint)
        fingerprint = first.findings[0].fingerprint(0)
        baselined = lint({"repro/core/sweep.py": _VIOLATION},
                         rules=["REP101"], baseline={fingerprint})
        payload = json.loads(render_sarif(baselined))
        entry = payload["runs"][0]["results"][0]
        assert entry["suppressions"] == [{"kind": "external"}]

    def test_text_reports_cache_traffic(self, tree, tmp_path):
        from repro.lint.cache import LintCache

        root = tree({"repro/core/sweep.py": _VIOLATION})
        cache_path = tmp_path / "lint-cache.json"
        run_lint([root], rules=["REP101"],
                 cache=LintCache(cache_path))
        warm = run_lint([root], rules=["REP101"],
                        cache=LintCache(cache_path))
        assert "incremental cache" in render_text(warm)
        assert "hit(s)" in render_text(warm)
