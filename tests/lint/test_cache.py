"""Incremental lint cache: correctness of replay and invalidation."""

import json

from repro.lint.cache import CACHE_SCHEMA, LintCache
from repro.lint.engine import run_lint
from tests.lint.conftest import active_rules

_FILES = {
    "repro/core/sweep.py": (
        "import random\n"
        "\n"
        "def pick(items):\n"
        "    return random.choice(items)\n"
    ),
    "repro/core/clean.py": "def add(a, b):\n    return a + b\n",
    "repro/analysis/ok.py": "def mean(xs):\n    return sum(xs)\n",
}


def _write(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
        parent = path.parent
        while parent != root:
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
            parent = parent.parent
    return root


class TestWarmRuns:
    def test_warm_run_replays_identical_findings(self, tmp_path):
        root = _write(tmp_path / "src", _FILES)
        cache_path = tmp_path / "lint-cache.json"

        cold = run_lint([root], cache=LintCache(cache_path))
        warm = run_lint([root], cache=LintCache(cache_path))

        assert cold.cache_hits == 0
        assert cold.cache_misses == warm.cache_hits > 0
        assert warm.cache_misses == 0
        assert [f.to_dict() for f in warm.findings] \
            == [f.to_dict() for f in cold.findings]
        assert warm.suppressed == cold.suppressed
        assert warm.exit_code == cold.exit_code

    def test_editing_one_file_misses_only_that_file(self, tmp_path):
        root = _write(tmp_path / "src", _FILES)
        cache_path = tmp_path / "lint-cache.json"
        cold = run_lint([root], cache=LintCache(cache_path))

        (root / "repro/core/clean.py").write_text(
            "def add(a, b):\n    return b + a\n", encoding="utf-8")
        warm = run_lint([root], cache=LintCache(cache_path))
        assert warm.cache_misses == 1
        assert warm.cache_hits == cold.cache_misses - 1

    def test_edit_changes_findings_not_stale_replay(self, tmp_path):
        root = _write(tmp_path / "src", _FILES)
        cache_path = tmp_path / "lint-cache.json"
        first = run_lint([root], cache=LintCache(cache_path))
        assert "REP101" in active_rules(first)

        (root / "repro/core/sweep.py").write_text(
            "def pick(items, rng):\n    return rng.choice(items)\n",
            encoding="utf-8")
        second = run_lint([root], cache=LintCache(cache_path))
        assert "REP101" not in active_rules(second)

    def test_pragma_usage_replays_for_rep601(self, tmp_path):
        # A cached file whose pragma fired must not be called stale on
        # the warm run: usage events are part of the cache entry.
        files = dict(_FILES)
        files["repro/core/sweep.py"] = (
            "import random\n"
            "\n"
            "def pick(items):\n"
            "    return random.choice(items)  # reprolint: disable=REP101\n"
        )
        root = _write(tmp_path / "src", files)
        cache_path = tmp_path / "lint-cache.json"

        cold = run_lint([root], cache=LintCache(cache_path))
        warm = run_lint([root], cache=LintCache(cache_path))
        assert "REP601" not in active_rules(cold)
        assert "REP601" not in active_rules(warm)
        assert warm.suppressed == cold.suppressed == 1


class TestInvalidation:
    def test_rule_selection_change_goes_cold(self, tmp_path):
        root = _write(tmp_path / "src", _FILES)
        cache_path = tmp_path / "lint-cache.json"
        run_lint([root], cache=LintCache(cache_path))

        narrowed = run_lint([root], rules=["REP101"],
                            cache=LintCache(cache_path))
        assert narrowed.cache_hits == 0
        assert narrowed.cache_misses > 0

    def test_corrupt_cache_file_degrades_to_cold(self, tmp_path):
        root = _write(tmp_path / "src", _FILES)
        cache_path = tmp_path / "lint-cache.json"
        cache_path.write_text("{not json", encoding="utf-8")

        result = run_lint([root], cache=LintCache(cache_path))
        assert result.cache_hits == 0
        assert "REP101" in active_rules(result)
        # And the bad file was replaced with a valid one.
        payload = json.loads(cache_path.read_text(encoding="utf-8"))
        assert payload["schema"] == CACHE_SCHEMA

    def test_baseline_changes_do_not_invalidate(self, tmp_path):
        # Findings cache pre-baseline: matching happens per run, so a
        # new baseline gets full cache hits AND correct baselining.
        root = _write(tmp_path / "src", _FILES)
        cache_path = tmp_path / "lint-cache.json"
        cold = run_lint([root], cache=LintCache(cache_path))
        fingerprint = cold.active[0].fingerprint(0)

        warm = run_lint([root], cache=LintCache(cache_path),
                        baseline={fingerprint})
        assert warm.cache_misses == 0
        assert warm.exit_code == 0
        assert [f.rule for f in warm.baselined] == ["REP101"]


class TestPersistence:
    def test_save_writes_schema_and_modules(self, tmp_path):
        root = _write(tmp_path / "src", _FILES)
        cache_path = tmp_path / "nested" / "lint-cache.json"
        run_lint([root], cache=LintCache(cache_path))

        payload = json.loads(cache_path.read_text(encoding="utf-8"))
        assert payload["schema"] == CACHE_SCHEMA
        assert "repro.core.sweep" in payload["modules"]
        assert payload["project"] is not None
        # No leftover temp file from the atomic replace.
        assert not cache_path.with_name(
            cache_path.name + ".tmp").exists()

    def test_unchanged_warm_run_does_not_rewrite(self, tmp_path):
        root = _write(tmp_path / "src", _FILES)
        cache_path = tmp_path / "lint-cache.json"
        run_lint([root], cache=LintCache(cache_path))
        stamp = cache_path.stat().st_mtime_ns

        run_lint([root], cache=LintCache(cache_path))
        assert cache_path.stat().st_mtime_ns == stamp
