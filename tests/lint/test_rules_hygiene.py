"""Suppression hygiene (REP601) and baseline round-trips.

Satellite of the PR contract: a pragma that stops suppressing after an
edit, and a baseline entry whose finding was fixed, must both surface
as REP601 -- suppressions are debt, and the ledger must stay honest.
"""

from repro.lint.baseline import load_baseline_entries, write_baseline
from repro.lint.engine import run_lint
from tests.lint.conftest import active_rules


class TestStalePragmas:
    def test_stale_line_pragma_is_reported(self, lint):
        result = lint({
            "repro/core/math.py": """
                def add(a, b):
                    return a + b  # reprolint: disable=REP101
            """,
        })
        assert active_rules(result) == ["REP601"]
        finding = result.active[0]
        assert finding.severity == "warning"
        assert "suppressed nothing" in finding.message

    def test_working_pragma_is_not_reported(self, lint):
        result = lint({
            "repro/core/sweep.py": """
                import random

                def pick(items):
                    return random.choice(items)  # reprolint: disable=REP101
            """,
        }, rules=["REP101", "REP601"])
        assert result.active == []
        assert result.suppressed == 1

    def test_stale_file_pragma_is_reported(self, lint):
        result = lint({
            "repro/core/math.py": """
                # reprolint: disable-file=REP103
                def add(a, b):
                    return a + b
            """,
        })
        assert active_rules(result) == ["REP601"]

    def test_unknown_rule_id_lists_valid_ids(self, lint):
        result = lint({
            "repro/core/math.py": """
                def add(a, b):
                    return a + b  # reprolint: disable=REP999
            """,
        })
        assert active_rules(result) == ["REP601"]
        message = result.active[0].message
        assert "unknown rule id REP999" in message
        assert "REP101" in message and "REP601" in message

    def test_rules_subset_cannot_prove_staleness(self, lint):
        # With only REP601 selected, a REP101 pragma's silence proves
        # nothing -- the rule that would have fired never ran.
        result = lint({
            "repro/core/sweep.py": """
                import random

                def pick(items):
                    return random.choice(items)  # reprolint: disable=REP101
            """,
        }, rules=["REP601"])
        assert result.active == []

    def test_docstring_prose_about_pragmas_is_not_a_pragma(self, lint):
        result = lint({
            "repro/core/doc.py": '''
                """Write ``# reprolint: disable=REP101`` to suppress."""

                def add(a, b):
                    return a + b
            ''',
        })
        assert result.active == []

    def test_pragma_suppressing_a_project_rule_counts_as_used(self, lint):
        # REP111 findings come from the project phase; REP601 (also
        # project-scope, running last) must still see the suppression.
        result = lint({
            "repro/analysis/helpers.py": """
                import time

                def grab_clock():
                    return time.time()
            """,
            "repro/analysis/export.py": """
                from repro.analysis.helpers import grab_clock

                def to_payload(rows):
                    # deliberate: operator-facing stamp.  reprolint: disable=REP111
                    return {"rows": rows, "at": grab_clock()}
            """,
        }, rules=["REP111", "REP601"])
        assert result.active == []
        assert result.suppressed == 1


_VIOLATION = {
    "repro/core/sweep.py": (
        "import random\n"
        "\n"
        "def pick(items):\n"
        "    return random.choice(items)\n"
    ),
}


class TestBaselineRoundTrip:
    def _baseline(self, tree, files, path, rules=None):
        result = run_lint([tree(files)], rules=rules)
        write_baseline(result.findings, path)
        return load_baseline_entries(path)

    def test_line_shifting_edit_stays_clean(self, tree, tmp_path):
        path = tmp_path / "baseline.json"
        entries = self._baseline(tree, _VIOLATION, path, rules=["REP101"])
        assert len(entries) == 1

        # Unrelated lines above the finding: the content fingerprint
        # still matches, and no stale-baseline REP601 appears.
        drifted = dict(_VIOLATION)
        drifted["repro/core/sweep.py"] = (
            "'''sweep module.'''\n\nLIMIT = 3\n\n"
            + _VIOLATION["repro/core/sweep.py"]
        )
        result = run_lint([tree(drifted)], baseline=entries,
                          baseline_path=path)
        assert result.exit_code == 0
        assert [f.rule for f in result.baselined] == ["REP101"]

    def test_fixed_finding_turns_baseline_entry_stale(self, tree,
                                                      tmp_path):
        path = tmp_path / "baseline.json"
        entries = self._baseline(tree, _VIOLATION, path, rules=["REP101"])

        fixed = {
            "repro/core/sweep.py": (
                "def pick(items, rng):\n"
                "    return rng.choice(items)\n"
            ),
        }
        result = run_lint([tree(fixed)], baseline=entries,
                          baseline_path=path)
        assert active_rules(result) == ["REP601"]
        finding = result.active[0]
        assert finding.path == "baseline.json"
        assert "stale baseline entry" in finding.message
        # The entry's context (rule, original path) rides along so the
        # operator knows what was excused without opening the file.
        assert "REP101" in finding.message
        assert "repro/core/sweep.py" in finding.message

    def test_stale_entries_are_scoped_to_selection(self, tree, tmp_path):
        path = tmp_path / "baseline.json"
        entries = self._baseline(tree, _VIOLATION, path, rules=["REP101"])

        fixed = {"repro/core/sweep.py": "X = 1\n"}
        result = run_lint([tree(fixed)], rules=["REP101"],
                          baseline=entries, baseline_path=path)
        # REP601 deselected: the stale entry stays quiet.
        assert result.active == []

    def test_pragma_then_fix_reports_both_halves(self, tree, tmp_path):
        # The satellite scenario end-to-end: baseline a finding, then
        # pragma a second one; after the code is fixed, the pragma is
        # stale (REP601) and so is the baseline entry (REP601).
        files = {
            "repro/core/sweep.py": (
                "import random\n"
                "\n"
                "def pick(items):\n"
                "    return random.choice(items)\n"
                "\n"
                "def jitter():\n"
                "    return random.random()  # reprolint: disable=REP101\n"
            ),
        }
        path = tmp_path / "baseline.json"
        entries = self._baseline(tree, files, path, rules=["REP101"])
        assert len(entries) == 1  # the pragma'd finding never lands

        # Both violations fixed; the pragma comment survives the edit.
        fixed = {
            "repro/core/sweep.py": (
                "def pick(items, rng):\n"
                "    return rng.choice(items)\n"
                "\n"
                "def jitter(rng):\n"
                "    return rng.random()  # reprolint: disable=REP101\n"
            ),
        }
        result = run_lint([tree(fixed)], baseline=entries,
                          baseline_path=path)
        assert active_rules(result) == ["REP601", "REP601"]
        paths = sorted(f.path for f in result.active)
        assert paths == ["baseline.json", "repro/core/sweep.py"]
