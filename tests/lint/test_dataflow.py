"""Taint summaries over the call graph (repro.lint.dataflow)."""

import ast

from repro.lint.callgraph import CallGraph
from repro.lint.dataflow import (
    ENTROPY,
    WALLCLOCK,
    DataflowAnalysis,
    taint_of_call,
)
from repro.lint.engine import Project


def _call(source):
    return ast.parse(source, mode="eval").body


def analysis(tree, files, sanitizers=()):
    return DataflowAnalysis(
        CallGraph(Project([tree(files)])), sanitizer_markers=sanitizers)


class TestSourceTables:
    def test_wall_clock_sources(self):
        for source in ("time.time()", "time.time_ns()",
                       "datetime.datetime.now()", "datetime.utcnow()",
                       "date.today()"):
            kind, _ = taint_of_call(_call(source))
            assert kind == WALLCLOCK, source

    def test_entropy_sources(self):
        for source in ("random.choice(items)", "random.random()",
                       "os.urandom(16)", "uuid.uuid4()",
                       "secrets.token_hex(8)"):
            kind, _ = taint_of_call(_call(source))
            assert kind == ENTROPY, source

    def test_argless_constructors_are_entropy(self):
        assert taint_of_call(_call("random.Random()"))[0] == ENTROPY
        assert taint_of_call(_call("np.random.default_rng()"))[0] == ENTROPY

    def test_seeded_constructors_are_clean(self):
        assert taint_of_call(_call("random.Random(7)")) is None
        assert taint_of_call(_call("np.random.default_rng(seed)")) is None

    def test_ordinary_calls_are_clean(self):
        assert taint_of_call(_call("math.sqrt(x)")) is None
        assert taint_of_call(_call("helper(x)")) is None


class TestSummaries:
    def test_direct_source_in_return(self, tree):
        flow = analysis(tree, {
            "repro/core/clock.py": """
                import time

                def now():
                    return time.time()
            """,
        })
        summary = flow.summary(("repro.core.clock", "now"))
        assert WALLCLOCK in summary.returns
        assert summary.returns[WALLCLOCK].via == ()

    def test_taint_composes_across_modules(self, tree):
        flow = analysis(tree, {
            "repro/core/clock.py": """
                import time

                def now():
                    return time.time()
            """,
            "repro/core/report.py": """
                from repro.core.clock import now

                def stamp():
                    return {"at": now()}
            """,
        })
        origin = flow.summary(
            ("repro.core.report", "stamp")).returns[WALLCLOCK]
        assert origin.via == (("repro.core.clock", "now"),)
        assert "via repro.core.clock.now" in origin.route()

    def test_parameter_passthrough(self, tree):
        flow = analysis(tree, {
            "repro/core/util.py": """
                def ident(value):
                    return value
            """,
        })
        assert flow.summary(
            ("repro.core.util", "ident")).passthrough == {0}

    def test_taint_flows_through_passthrough_callee(self, tree):
        flow = analysis(tree, {
            "repro/core/util.py": """
                import random

                def ident(value):
                    return value

                def draw():
                    return ident(random.random())
            """,
        })
        assert ENTROPY in flow.summary(
            ("repro.core.util", "draw")).returns

    def test_sanitizer_clears_taint(self, tree):
        flow = analysis(tree, {
            "repro/core/util.py": """
                import time

                def stamp():
                    return derive_seed(time.time())
            """,
        }, sanitizers=("seed",))
        assert flow.summary(("repro.core.util", "stamp")).returns == {}

    def test_mutual_recursion_reaches_fixpoint(self, tree):
        flow = analysis(tree, {
            "repro/core/rec.py": """
                import time

                def ping(n):
                    return pong(n - 1)

                def pong(n):
                    if n <= 0:
                        return time.time()
                    return ping(n)
            """,
        })
        assert WALLCLOCK in flow.summary(
            ("repro.core.rec", "ping")).returns
        assert WALLCLOCK in flow.summary(
            ("repro.core.rec", "pong")).returns

    def test_assignment_chains_carry_taint(self, tree):
        flow = analysis(tree, {
            "repro/core/util.py": """
                import random

                def draw():
                    value = random.random()
                    scaled = value * 100
                    return scaled
            """,
        })
        assert ENTROPY in flow.summary(
            ("repro.core.util", "draw")).returns

    def test_external_calls_propagate_argument_taint(self, tree):
        flow = analysis(tree, {
            "repro/core/util.py": """
                import time

                def label():
                    return str(round(time.time()))
            """,
        })
        assert WALLCLOCK in flow.summary(
            ("repro.core.util", "label")).returns

    def test_constants_are_clean(self, tree):
        flow = analysis(tree, {
            "repro/core/util.py": """
                def fixed():
                    return 42
            """,
        })
        assert flow.summary(("repro.core.util", "fixed")).returns == {}


class TestFunctionEnv:
    def test_parameters_start_clean_locals_get_tainted(self, tree):
        flow = analysis(tree, {
            "repro/core/util.py": """
                import time

                def report(rows):
                    copied = rows
                    stamp = time.time()
                    return copied, stamp
            """,
        })
        record = flow.callgraph.function(("repro.core.util", "report"))
        env = flow.function_env(record)
        assert env["copied"] == {}
        assert WALLCLOCK in env["stamp"]

    def test_loop_carried_taint_stabilises(self, tree):
        flow = analysis(tree, {
            "repro/core/util.py": """
                import random

                def churn(items):
                    total = 0
                    for _ in items:
                        total = total + bump
                        bump = random.random()
                    return total
            """,
        })
        record = flow.callgraph.function(("repro.core.util", "churn"))
        env = flow.function_env(record)
        # The second pass sees ``bump``'s taint feeding ``total``.
        assert ENTROPY in env["total"]
