"""Interprocedural flow rules: REP111, REP211, REP411."""

from tests.lint.conftest import active_rules


class TestRep111InterproceduralTaint:
    def test_serializer_tainted_via_helper(self, lint):
        result = lint({
            "repro/analysis/helpers.py": """
                import time

                def grab_clock():
                    return time.time()
            """,
            "repro/analysis/export.py": """
                from repro.analysis.helpers import grab_clock

                def to_payload(rows):
                    return {"rows": rows, "at": grab_clock()}
            """,
        }, rules=["REP111"])
        assert active_rules(result) == ["REP111"]
        finding = result.active[0]
        assert finding.path == "repro/analysis/export.py"
        assert "wall clock" in finding.message
        assert "via repro.analysis.helpers.grab_clock" in finding.message

    def test_direct_source_is_rep102_turf(self, lint):
        # A serializer calling time.time() itself is the per-module
        # rule's finding; REP111 only reports laundering via helpers.
        result = lint({
            "repro/analysis/export.py": """
                import time

                def to_payload(rows):
                    return {"rows": rows, "at": time.time()}
            """,
        }, rules=["REP111"])
        assert result.active == []

    def test_json_dump_sink_catches_tainted_argument(self, lint):
        result = lint({
            "repro/core/clock.py": """
                import random

                def draw():
                    return random.random()
            """,
            "repro/core/emit.py": """
                import json

                from repro.core.clock import draw

                def emit(path):
                    payload = {"jitter": draw()}
                    return json.dumps(payload)
            """,
        }, rules=["REP111"])
        assert active_rules(result) == ["REP111"]
        assert "unseeded entropy" in result.active[0].message

    def test_sanitized_value_is_clean(self, lint):
        result = lint({
            "repro/analysis/helpers.py": """
                import time

                def canonical_stamp():
                    return round(time.time())
            """,
            "repro/analysis/export.py": """
                from repro.analysis.helpers import canonical_stamp

                def to_payload(rows):
                    return {"rows": rows, "at": canonical_stamp()}
            """,
        }, rules=["REP111"])
        # "canonical" is a configured sanitizer marker: deriving the
        # stamp is the helper's deliberate job, not an accident.
        assert result.active == []

    def test_nondeterministic_package_is_exempt(self, lint):
        result = lint({
            "repro/lint/helpers.py": """
                import time

                def grab_clock():
                    return time.time()
            """,
            "repro/lint/report.py": """
                from repro.lint.helpers import grab_clock

                def to_payload():
                    return {"at": grab_clock()}
            """,
        }, rules=["REP111"])
        assert result.active == []


class TestRep211TransitivePicklability:
    def test_factory_nested_def_across_modules(self, lint):
        result = lint({
            "repro/core/factory.py": """
                def make_worker():
                    def worker(item):
                        return item
                    return worker
            """,
            "repro/core/runner.py": """
                from repro.core.factory import make_worker

                WORKER = make_worker()

                def run(pool, shard):
                    return pool.submit(WORKER, shard)
            """,
        }, rules=["REP211"])
        assert active_rules(result) == ["REP211"]
        message = result.active[0].message
        assert "nested function" in message
        assert "repro.core.factory.make_worker" in message

    def test_lambda_behind_import_and_alias(self, lint):
        result = lint({
            "repro/core/handlers.py": """
                WORKER = lambda item: item
            """,
            "repro/core/runner.py": """
                from repro.core.handlers import WORKER

                def run(pool, shard):
                    return pool.submit(WORKER, shard)
            """,
        }, rules=["REP211"])
        assert active_rules(result) == ["REP211"]
        assert "lambda" in result.active[0].message

    def test_same_module_lambda_is_rep201_turf(self, lint):
        result = lint({
            "repro/core/runner.py": """
                def run(pool, shard):
                    return pool.submit(lambda: shard)
            """,
        }, rules=["REP211"])
        assert result.active == []

    def test_unpicklable_payload_argument(self, lint):
        result = lint({
            "repro/core/runner.py": """
                import threading

                def work(item, lock):
                    return item

                def run(pool, shard):
                    return pool.submit(work, shard, threading.Lock())
            """,
        }, rules=["REP211"])
        assert active_rules(result) == ["REP211"]
        assert "threading lock" in result.active[0].message

    def test_nested_pool_submission_deadlock(self, lint):
        result = lint({
            "repro/core/inner.py": """
                def fan_out(pool, items):
                    return [pool.submit(len, item) for item in items]
            """,
            "repro/core/runner.py": """
                from repro.core.inner import fan_out

                def work(item):
                    return fan_out(item.pool, item.parts)

                def run(pool, shard):
                    return pool.submit(work, shard)
            """,
        }, rules=["REP211"])
        messages = [f.message for f in result.active]
        assert any("transitively submits" in m for m in messages)

    def test_plain_module_function_is_clean(self, lint):
        result = lint({
            "repro/core/worker.py": """
                def work(item):
                    return item
            """,
            "repro/core/runner.py": """
                from repro.core.worker import work

                def run(pool, shard):
                    return pool.submit(work, shard)
            """,
        }, rules=["REP211"])
        assert result.active == []


class TestRep411ExceptionPathResources:
    def test_never_closed_handle(self, lint):
        result = lint({
            "repro/store/net.py": """
                def fetch(path):
                    client = connect(path)
                    return client.request(path).body
            """,
        }, rules=["REP411"])
        # ``client`` is used as a receiver only -- no escape -- and
        # never closed.
        assert active_rules(result) == ["REP411"]
        assert "never closed" in result.active[0].message

    def test_success_path_only_close(self, lint):
        result = lint({
            "repro/store/net.py": """
                def fetch(path):
                    client = connect(path)
                    data = client.request(path)
                    client.close()
                    return data
            """,
        }, rules=["REP411"])
        assert active_rules(result) == ["REP411"]
        assert "success path" in result.active[0].message

    def test_close_in_finally_is_clean(self, lint):
        result = lint({
            "repro/store/net.py": """
                def fetch(path):
                    client = connect(path)
                    try:
                        return client.request(path)
                    finally:
                        client.close()
            """,
        }, rules=["REP411"])
        assert result.active == []

    def test_returned_handle_transfers_custody(self, lint):
        result = lint({
            "repro/store/net.py": """
                def open_channel(path):
                    client = connect(path)
                    return client
            """,
        }, rules=["REP411"])
        assert result.active == []

    def test_constructor_suffix_counts_as_acquisition(self, lint):
        result = lint({
            "repro/store/pooling.py": """
                def probe(spec):
                    backend = DiskBackend(spec)
                    return backend.stat()
            """,
        }, rules=["REP411"])
        assert active_rules(result) == ["REP411"]
        assert "DiskBackend instance" in result.active[0].message

    def test_self_accessor_is_exempt(self, lint):
        result = lint({
            "repro/store/client.py": """
                class StoreClient:
                    def fetch(self, path):
                        connection = self._connect()
                        return connection.request(path)
            """,
        }, rules=["REP411"])
        assert result.active == []

    def test_non_store_module_is_exempt(self, lint):
        result = lint({
            "repro/analysis/net.py": """
                def fetch(path):
                    client = connect(path)
                    return client.request(path).body
            """,
        }, rules=["REP411"])
        assert result.active == []
