"""REP101 / REP102 / REP103: the determinism rules."""

from tests.lint.conftest import active_rules


class TestUnseededRandomness:
    def test_global_random_function_is_flagged(self, lint):
        result = lint({
            "repro/core/sweep.py": """
                import random

                def pick(items):
                    return random.choice(items)
            """,
        }, rules=["REP101"])
        assert active_rules(result) == ["REP101"]
        assert "random.choice()" in result.active[0].message

    def test_unseeded_constructors_are_flagged(self, lint):
        result = lint({
            "repro/analysis/draws.py": """
                import random
                import numpy as np

                def make():
                    a = random.Random()
                    b = np.random.default_rng()
                    return a, b
            """,
        }, rules=["REP101"])
        assert active_rules(result) == ["REP101", "REP101"]

    def test_seeded_constructors_are_clean(self, lint):
        result = lint({
            "repro/analysis/draws.py": """
                import random
                import numpy as np

                def make(seed):
                    a = random.Random(seed)
                    b = np.random.default_rng(seed)
                    return a.random() + float(b.random())
            """,
        }, rules=["REP101"])
        assert result.active == []

    def test_machine_entropy_is_flagged(self, lint):
        result = lint({
            "repro/corpus/salt.py": """
                import os

                def salt():
                    return os.urandom(16)
            """,
        }, rules=["REP101"])
        assert active_rules(result) == ["REP101"]

    def test_modules_outside_the_contract_are_exempt(self, lint):
        result = lint({
            "tools/shuffle.py": """
                import random

                def pick(items):
                    return random.choice(items)
            """,
        }, rules=["REP101"])
        assert result.active == []

    def test_pragma_suppresses_the_line(self, lint):
        result = lint({
            "repro/core/sweep.py": """
                import random

                def pick(items):
                    # benchmark warm-up only.  reprolint: disable=REP101
                    return random.choice(items)
            """,
        }, rules=["REP101"])
        assert result.active == []
        assert result.suppressed == 1


class TestWallClock:
    def test_time_time_is_flagged_as_warning(self, lint):
        result = lint({
            "repro/store/meta.py": """
                import time

                def stamp():
                    return time.time()
            """,
        }, rules=["REP102"])
        assert active_rules(result) == ["REP102"]
        assert result.active[0].severity == "warning"

    def test_datetime_now_is_flagged(self, lint):
        result = lint({
            "repro/experiments/report.py": """
                import datetime

                def stamp():
                    return datetime.datetime.now()
            """,
        }, rules=["REP102"])
        assert active_rules(result) == ["REP102"]

    def test_perf_counter_is_clean(self, lint):
        result = lint({
            "repro/store/meta.py": """
                import time

                def elapsed(t0):
                    return time.perf_counter() - t0
            """,
        }, rules=["REP102"])
        assert result.active == []


class TestUnsortedSerialization:
    def test_dict_items_in_serializer_is_flagged(self, lint):
        result = lint({
            "repro/telemetry/view.py": """
                def to_dict(data):
                    return {k: v for k, v in data.items()}
            """,
        }, rules=["REP103"])
        assert active_rules(result) == ["REP103"]
        assert "dict.items()" in result.active[0].message

    def test_sorted_wrapping_is_clean(self, lint):
        result = lint({
            "repro/telemetry/view.py": """
                def to_dict(data):
                    return {k: v for k, v in sorted(data.items())}
            """,
        }, rules=["REP103"])
        assert result.active == []

    def test_set_literal_iteration_is_flagged(self, lint):
        result = lint({
            "repro/experiments/out.py": """
                def render_rows(a, b, c):
                    lines = []
                    for item in {a, b, c}:
                        lines.append(str(item))
                    return lines
            """,
        }, rules=["REP103"])
        assert active_rules(result) == ["REP103"]

    def test_non_serializer_functions_are_exempt(self, lint):
        result = lint({
            "repro/experiments/out.py": """
                def tally(data):
                    total = 0
                    for value in data.values():
                        total += value
                    return total
            """,
        }, rules=["REP103"])
        assert result.active == []
