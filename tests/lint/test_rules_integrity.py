"""REP401 / REP402 / REP403 / REP501: crash-consistency and protocol
conformance."""

from tests.lint.conftest import active_rules


class TestFsyncOrderedRename:
    def test_bare_replace_is_flagged(self, lint):
        result = lint({
            "repro/store/objstore.py": """
                import os

                def put(tmp, final):
                    os.replace(tmp, final)
            """,
        }, rules=["REP401"])
        assert active_rules(result) == ["REP401"]
        message = result.active[0].message
        assert "no os.fsync" in message
        assert "parent-directory" in message

    def test_fully_ordered_rename_is_clean(self, lint):
        result = lint({
            "repro/store/objstore.py": """
                import os

                def _fsync_dir(path):
                    fd = os.open(path, os.O_RDONLY)
                    try:
                        os.fsync(fd)
                    finally:
                        os.close(fd)

                def put(handle, tmp, final, parent):
                    handle.flush()
                    os.fsync(handle.fileno())
                    handle.close()
                    os.replace(tmp, final)
                    _fsync_dir(parent)
            """,
        }, rules=["REP401"])
        assert result.active == []

    def test_missing_directory_fsync_is_flagged(self, lint):
        result = lint({
            "repro/store/objstore.py": """
                import os

                def put(handle, tmp, final):
                    os.fsync(handle.fileno())
                    os.replace(tmp, final)
            """,
        }, rules=["REP401"])
        assert active_rules(result) == ["REP401"]
        assert "parent-directory" in result.active[0].message

    def test_renames_outside_the_store_are_exempt(self, lint):
        result = lint({
            "repro/experiments/out.py": """
                import os

                def finish(tmp, final):
                    os.replace(tmp, final)
            """,
        }, rules=["REP401"])
        assert result.active == []


class TestJournalAtomicWrite:
    def test_raw_open_write_is_flagged(self, lint):
        result = lint({
            "repro/store/journal.py": """
                def checkpoint(path, blob):
                    with open(path, "wb") as handle:
                        handle.write(blob)
            """,
        }, rules=["REP402"])
        assert active_rules(result) == ["REP402"]
        assert "atomic_write" in result.active[0].message

    def test_write_bytes_and_replace_are_flagged(self, lint):
        result = lint({
            "repro/store/journal.py": """
                import os

                def checkpoint(path, tmp, blob):
                    path.write_bytes(blob)
                    os.replace(tmp, path)
            """,
        }, rules=["REP402"])
        assert active_rules(result) == ["REP402", "REP402"]
        assert "write_bytes" in result.active[0].message
        assert "os.replace" in result.active[1].message

    def test_atomic_helper_route_is_clean(self, lint):
        result = lint({
            "repro/store/journal.py": """
                from repro.store.objstore import atomic_write

                def checkpoint(path, blob):
                    atomic_write(path, blob)

                def load(path):
                    return path.read_bytes()
            """,
        }, rules=["REP402"])
        assert result.active == []

    def test_raw_writes_inside_the_atomic_helper_are_exempt(self, lint):
        result = lint({
            "repro/store/journal.py": """
                import os

                def _atomic_write(path, blob):
                    tmp = str(path) + ".tmp"
                    with open(tmp, "wb") as handle:
                        handle.write(blob)
                        os.fsync(handle.fileno())
                    os.replace(tmp, path)

                def checkpoint(path, blob):
                    _atomic_write(path, blob)
            """,
        }, rules=["REP402"])
        assert result.active == []

    def test_modules_outside_the_journal_are_exempt(self, lint):
        result = lint({
            "repro/store/cache.py": """
                def save(path, blob):
                    path.write_bytes(blob)
            """,
        }, rules=["REP402"])
        assert result.active == []

    def test_pragma_suppresses(self, lint):
        result = lint({
            "repro/store/journal.py": """
                def debug_dump(path, blob):
                    # scratch dump, not a checkpoint.  reprolint: disable=REP402
                    path.write_bytes(blob)
            """,
        }, rules=["REP402"])
        assert result.active == []

    def test_read_only_opens_are_clean(self, lint):
        result = lint({
            "repro/store/journal.py": """
                def load(path):
                    with open(path, "rb") as handle:
                        return handle.read()
            """,
        }, rules=["REP402"])
        assert result.active == []


class TestVerifiedStoreReads:
    def test_raw_byte_return_is_flagged(self, lint):
        result = lint({
            "repro/store/backends/remote.py": """
                class WireBackend:
                    def get(self, key):
                        return self._frames[key]
            """,
        }, rules=["REP403"])
        assert active_rules(result) == ["REP403"]
        message = result.active[0].message
        assert "WireBackend.get" in message
        assert "verify" in message

    def test_verifying_getter_is_clean(self, lint):
        result = lint({
            "repro/store/backends/remote.py": """
                from repro.store.framing import unframe_object

                class WireBackend:
                    def get(self, key):
                        payload, _ = unframe_object(self._frames[key])
                        return payload
            """,
        }, rules=["REP403"])
        assert result.active == []

    def test_delegating_getter_is_clean(self, lint):
        result = lint({
            "repro/store/cache.py": """
                class ResultCache:
                    def get_bytes(self, key):
                        return self.store.get(key)

                    def get_json(self, key):
                        return self.get_bytes(key)
            """,
        }, rules=["REP403"])
        assert result.active == []

    def test_frame_named_getters_are_exempt(self, lint):
        result = lint({
            "repro/store/backends/local.py": """
                class LocalBackend:
                    def get_frame(self, key):
                        return self._path(key).read_bytes()

                    def get_raw_bytes(self, key):
                        return self._path(key).read_bytes()
            """,
        }, rules=["REP403"])
        assert result.active == []

    def test_unsuffixed_classes_are_exempt(self, lint):
        result = lint({
            "repro/store/runner.py": """
                class _StoreGuard:
                    def get_shard(self, key):
                        return self.shards[key]
            """,
        }, rules=["REP403"])
        assert result.active == []

    def test_modules_outside_the_store_are_exempt(self, lint):
        result = lint({
            "repro/faults/injector.py": """
                class FaultyObjectStore:
                    def get(self, key):
                        return self.inner._frames[key]
            """,
        }, rules=["REP403"])
        assert result.active == []

    def test_pragma_suppresses(self, lint):
        result = lint({
            "repro/store/backends/scratch.py": """
                class ScratchStore:
                    def get(self, key):  # reprolint: disable=REP403
                        return self._frames[key]
            """,
        }, rules=["REP403"])
        assert result.active == []


class TestHandRolledRetry:
    def test_for_range_swallowing_oserror_is_flagged(self, lint):
        result = lint({
            "repro/store/api/client.py": """
                def request(connection, path):
                    last = None
                    for _ in range(2):
                        try:
                            return connection.get(path)
                        except OSError as exc:
                            last = exc
                    raise last
            """,
        }, rules=["REP404"])
        assert active_rules(result) == ["REP404"]
        assert "RetryPolicy" in result.active[0].message

    def test_tuple_of_transport_errors_is_flagged(self, lint):
        result = lint({
            "repro/store/api/client.py": """
                import socket

                def request(connection, path):
                    for attempt in range(3):
                        try:
                            return connection.get(path)
                        except (ConnectionError, socket.timeout):
                            continue
            """,
        }, rules=["REP404"])
        assert active_rules(result) == ["REP404"]

    def test_policy_delegation_is_clean(self, lint):
        result = lint({
            "repro/store/api/client.py": """
                from repro.store.resilience import RetryPolicy

                def request(connection, path):
                    policy = RetryPolicy("http", max_attempts=2)
                    return policy.run(path, lambda: connection.get(path))
            """,
        }, rules=["REP404"])
        assert result.active == []

    def test_reraising_handler_is_clean(self, lint):
        # A loop that re-raises in the handler is classification, not
        # a retry: the exception still propagates on every iteration.
        result = lint({
            "repro/store/backends/remote.py": """
                def probe(children, key):
                    for child in range(len(children)):
                        try:
                            return children[child].get_frame(key)
                        except OSError as exc:
                            raise KeyError(key) from exc
            """,
        }, rules=["REP404"])
        assert result.active == []

    def test_non_range_loops_are_exempt(self, lint):
        # Fan-out over replicas swallows per-child errors by design --
        # that is degradation, not a retry of the same operation.
        result = lint({
            "repro/store/backends/multiplex.py": """
                def put_all(children, key, frame):
                    stored = 0
                    for child in children:
                        try:
                            child.put_frame(key, frame)
                            stored += 1
                        except OSError:
                            continue
                    return stored
            """,
        }, rules=["REP404"])
        assert result.active == []

    def test_resilience_module_itself_is_exempt(self, lint):
        result = lint({
            "repro/store/resilience.py": """
                def run(call, attempts):
                    last = None
                    for _ in range(attempts):
                        try:
                            return call()
                        except OSError as exc:
                            last = exc
                    raise last
            """,
        }, rules=["REP404"])
        assert result.active == []

    def test_loops_outside_the_store_are_exempt(self, lint):
        result = lint({
            "repro/corpus/ingest.py": """
                def read(paths):
                    for index in range(len(paths)):
                        try:
                            return open(paths[index], "rb").read()
                        except OSError:
                            continue
            """,
        }, rules=["REP404"])
        assert result.active == []

    def test_pragma_suppresses(self, lint):
        result = lint({
            "repro/store/api/client.py": """
                def request(connection, path):
                    for _ in range(2):  # reprolint: disable=REP404
                        try:
                            return connection.get(path)
                        except OSError:
                            continue
            """,
        }, rules=["REP404"])
        assert result.active == []


class TestRegistryConformance:
    def test_missing_protocol_member_is_flagged(self, lint):
        result = lint({
            "repro/checksums/registry.py": """
                class GoodSum:
                    name = "good"
                    width = 16

                    def compute(self, data):
                        return 0

                    def field(self, data):
                        return b"\\x00\\x00"

                    def verify(self, data):
                        return True


                class BadSum:
                    name = "bad"
                    width = 16

                    def compute(self, data):
                        return 0


                _FACTORIES = {
                    "good": GoodSum,
                    "bad": BadSum,
                }
            """,
        }, rules=["REP501"])
        assert active_rules(result) == ["REP501"]
        message = result.active[0].message
        assert "'bad'" in message
        assert "field" in message and "verify" in message

    def test_mask_width_mismatch_is_flagged(self, lint):
        result = lint({
            "repro/checksums/registry.py": """
                class Slipped:
                    name = "slipped"
                    width = 16
                    mask = 0xFFF

                    def compute(self, data):
                        return 0

                    def field(self, data):
                        return b"\\x00\\x00"

                    def verify(self, data):
                        return True


                _FACTORIES = {
                    "slipped": lambda: Slipped(),
                }
            """,
        }, rules=["REP501"])
        assert active_rules(result) == ["REP501"]
        assert "0xFFF" in result.active[0].message

    def test_mixin_members_and_init_assignments_count(self, lint):
        result = lint({
            "repro/checksums/registry.py": """
                class _Suffix:
                    def field(self, data):
                        return b""

                    def verify(self, data):
                        return True


                class Sum(_Suffix):
                    def __init__(self):
                        self.name = "sum"
                        self.width = 16
                        self.mask = (1 << 16) - 1

                    def compute(self, data):
                        return 0


                _FACTORIES = {
                    "sum": Sum,
                }
            """,
        }, rules=["REP501"])
        assert result.active == []

    def test_annotated_factories_dict_is_found(self, lint):
        result = lint({
            "repro/checksums/registry.py": """
                from typing import Callable, Dict

                class Incomplete:
                    name = "incomplete"

                    def compute(self, data):
                        return 0


                _FACTORIES: Dict[str, Callable] = {
                    "incomplete": Incomplete,
                }
            """,
        }, rules=["REP501"])
        assert active_rules(result) == ["REP501"]

    def test_unresolvable_factory_is_a_warning(self, lint):
        result = lint({
            "repro/checksums/registry.py": """
                def _dynamic():
                    return object()


                _FACTORIES = {
                    "dynamic": _dynamic(),
                }
            """,
        }, rules=["REP501"])
        assert active_rules(result) == ["REP501"]
        assert result.active[0].severity == "warning"
