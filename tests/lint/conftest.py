"""Shared fixtures for the reprolint test suite.

Rules key off *dotted module names* derived from the scan root, so
fixtures replicate the real tree's layout (``repro/core/...``) inside
a tmp directory and lint that root.
"""

import textwrap

import pytest

from repro.lint.engine import run_lint


@pytest.fixture
def tree(tmp_path):
    """``tree({relpath: source, ...}) -> root`` fixture-tree builder."""

    def build(files):
        root = tmp_path / "fixture-src"
        for rel, source in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
            # Package __init__.py files so the layout mirrors reality.
            parent = path.parent
            while parent != root and parent != parent.parent:
                init = parent / "__init__.py"
                if not init.exists():
                    init.write_text("", encoding="utf-8")
                parent = parent.parent
        return root

    return build


@pytest.fixture
def lint(tree):
    """``lint(files, rules=None, baseline=None) -> LintResult``."""

    def run(files, rules=None, baseline=None):
        return run_lint([tree(files)], rules=rules, baseline=baseline)

    return run


def active_rules(result):
    """The rule ids of the active findings, in report order."""
    return [finding.rule for finding in result.active]
