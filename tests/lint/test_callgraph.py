"""Call-graph construction and resolution (repro.lint.callgraph)."""

import ast

from repro.lint.callgraph import CallGraph
from repro.lint.engine import Project


def graph(tree, files):
    return CallGraph(Project([tree(files)]))


class TestEdges:
    def test_from_import_resolves_cross_module(self, tree):
        cg = graph(tree, {
            "repro/core/util.py": """
                def helper(x):
                    return x
            """,
            "repro/core/main.py": """
                from repro.core.util import helper

                def run(item):
                    return helper(item)
            """,
        })
        assert cg.callees(("repro.core.main", "run")) == (
            ("repro.core.util", "helper"),
        )

    def test_module_import_resolves_attribute_call(self, tree):
        cg = graph(tree, {
            "repro/core/util.py": """
                def helper(x):
                    return x
            """,
            "repro/core/main.py": """
                from repro.core import util

                def run(item):
                    return util.helper(item)
            """,
        })
        assert cg.callees(("repro.core.main", "run")) == (
            ("repro.core.util", "helper"),
        )

    def test_plain_import_resolves_full_path(self, tree):
        cg = graph(tree, {
            "repro/core/util.py": """
                def helper(x):
                    return x
            """,
            "repro/core/main.py": """
                import repro.core.util

                def run(item):
                    return repro.core.util.helper(item)
            """,
        })
        assert cg.callees(("repro.core.main", "run")) == (
            ("repro.core.util", "helper"),
        )

    def test_relative_import_resolves(self, tree):
        cg = graph(tree, {
            "repro/core/util.py": """
                def helper(x):
                    return x
            """,
            "repro/core/main.py": """
                from .util import helper

                def run(item):
                    return helper(item)
            """,
        })
        assert cg.callees(("repro.core.main", "run")) == (
            ("repro.core.util", "helper"),
        )

    def test_self_method_dispatch(self, tree):
        cg = graph(tree, {
            "repro/core/obj.py": """
                class Engine:
                    def step(self):
                        return self.finish()

                    def finish(self):
                        return 1
            """,
        })
        assert cg.callees(("repro.core.obj", "Engine.step")) == (
            ("repro.core.obj", "Engine.finish"),
        )

    def test_module_level_alias_resolves(self, tree):
        cg = graph(tree, {
            "repro/core/main.py": """
                def helper(x):
                    return x

                ALIAS = helper

                def run(item):
                    return ALIAS(item)
            """,
        })
        assert cg.callees(("repro.core.main", "run")) == (
            ("repro.core.main", "helper"),
        )

    def test_dynamic_call_resolves_to_nothing(self, tree):
        cg = graph(tree, {
            "repro/core/main.py": """
                def run(factory):
                    return factory()().spin()
            """,
        })
        assert cg.callees(("repro.core.main", "run")) == ()


class TestReachability:
    def test_reachable_is_transitive(self, tree):
        cg = graph(tree, {
            "repro/core/a.py": """
                from repro.core.b import middle

                def top(x):
                    return middle(x)
            """,
            "repro/core/b.py": """
                from repro.core.c import bottom

                def middle(x):
                    return bottom(x)
            """,
            "repro/core/c.py": """
                def bottom(x):
                    return x
            """,
        })
        assert cg.reachable(("repro.core.a", "top")) == {
            ("repro.core.b", "middle"),
            ("repro.core.c", "bottom"),
        }

    def test_sccs_are_callees_first(self, tree):
        cg = graph(tree, {
            "repro/core/rec.py": """
                def leaf(x):
                    return x

                def ping(n):
                    return pong(n - 1)

                def pong(n):
                    return leaf(n) if n <= 0 else ping(n)
            """,
        })
        components = cg.sccs()
        cycle = (("repro.core.rec", "ping"), ("repro.core.rec", "pong"))
        assert cycle in components
        # The leaf both members call must be summarised first.
        assert components.index(((("repro.core.rec"), "leaf"),)) \
            < components.index(cycle)


class TestResolveCallable:
    def test_factory_return_resolves_to_nested_def(self, tree):
        cg = graph(tree, {
            "repro/core/factory.py": """
                def make_worker():
                    def worker(item):
                        return item
                    return worker
            """,
            "repro/core/use.py": """
                from repro.core.factory import make_worker

                WORKER = make_worker()
            """,
        })
        module = cg.project.get("repro.core.use")
        resolved = cg.resolve_callable(module, ast.Name(id="WORKER"))
        assert resolved.kind == "nested"
        assert resolved.crossed
        assert ("repro.core.factory", "make_worker") in resolved.via

    def test_imported_function_is_crossed(self, tree):
        cg = graph(tree, {
            "repro/core/util.py": """
                def helper(x):
                    return x
            """,
            "repro/core/use.py": """
                from repro.core.util import helper
            """,
        })
        module = cg.project.get("repro.core.use")
        resolved = cg.resolve_callable(module, ast.Name(id="helper"))
        assert resolved.kind == "function"
        assert resolved.record.qid == ("repro.core.util", "helper")
        assert resolved.crossed

    def test_local_function_is_not_crossed(self, tree):
        cg = graph(tree, {
            "repro/core/use.py": """
                def helper(x):
                    return x
            """,
        })
        module = cg.project.get("repro.core.use")
        resolved = cg.resolve_callable(module, ast.Name(id="helper"))
        assert resolved.kind == "function"
        assert not resolved.crossed

    def test_lambda_expression(self, tree):
        cg = graph(tree, {"repro/core/use.py": "x = 1\n"})
        module = cg.project.get("repro.core.use")
        expr = ast.parse("lambda x: x", mode="eval").body
        assert cg.resolve_callable(module, expr).kind == "lambda"


class TestFunctionRecord:
    def test_params_drop_self_on_methods(self, tree):
        cg = graph(tree, {
            "repro/core/obj.py": """
                class Engine:
                    def step(self, size, seed):
                        return size
            """,
        })
        record = cg.function(("repro.core.obj", "Engine.step"))
        assert record.params == ["size", "seed"]
        assert record.name == "step"

    def test_functions_iterates_deterministically(self, tree):
        cg = graph(tree, {
            "repro/core/b.py": "def zz():\n    return 1\n",
            "repro/core/a.py": "def aa():\n    return 1\n",
        })
        qids = [record.qid for record in cg.functions()]
        assert qids == sorted(qids)
