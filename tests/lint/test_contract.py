"""Layer contracts: parsing, queries, and REP311 enforcement."""

from pathlib import Path

import pytest

from repro.lint.config import LayerContract, load_contract
from repro.lint.engine import run_lint
from tests.lint.conftest import active_rules

REPO_ROOT = Path(__file__).resolve().parents[2]


def contract(allowed=(), layers=None, include_lazy=False):
    if layers is None:
        layers = (
            ("core", ("repro.core",)),
            ("store", ("repro.store",)),
            ("checksums", ("repro.checksums",)),
        )
    return LayerContract(
        path="test-contract.toml", layers=layers, allowed=allowed,
        include_lazy=include_lazy,
    )


class TestLoadContract:
    def test_parses_layers_edges_and_default(self, tmp_path):
        path = tmp_path / "contract.toml"
        path.write_text(
            "[contract.layers]\n"
            'core = ["repro.core"]\n'
            'checksums = ["repro.checksums"]\n'
            "[contract.allowed]\n"
            'core = ["checksums"]\n',
            encoding="utf-8",
        )
        loaded = load_contract(path)
        assert loaded.layers == (
            ("core", ("repro.core",)),
            ("checksums", ("repro.checksums",)),
        )
        assert loaded.allowed == (("core", ("checksums",)),)
        assert loaded.include_lazy is False

    def test_undeclared_layer_raises(self, tmp_path):
        path = tmp_path / "contract.toml"
        path.write_text(
            "[contract.layers]\n"
            'core = ["repro.core"]\n'
            "[contract.allowed]\n"
            'core = ["ghost"]\n',
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="ghost"):
            load_contract(path)

    def test_bad_toml_raises_value_error(self, tmp_path):
        path = tmp_path / "contract.toml"
        path.write_text("[contract\n", encoding="utf-8")
        with pytest.raises(ValueError):
            load_contract(path)

    def test_committed_contract_loads_and_is_acyclic(self):
        loaded = load_contract(REPO_ROOT / ".reprolint.toml")
        assert loaded.find_cycle() is None
        assert loaded.layer_of("repro.core.engine") == "core"
        assert loaded.layer_of("repro.cli") == "cli"
        assert loaded.allows("cli", "api")
        assert not loaded.allows("checksums", "store")


class TestQueries:
    def test_layer_of_longest_prefix_wins(self):
        nested = contract(layers=(
            ("store", ("repro.store",)),
            ("storeapi", ("repro.store.api",)),
        ))
        assert nested.layer_of("repro.store.api.client") == "storeapi"
        assert nested.layer_of("repro.store.runner") == "store"
        assert nested.layer_of("repro.analysis") is None

    def test_allows_same_layer_and_declared_edges(self):
        c = contract(allowed=(("core", ("checksums",)),))
        assert c.allows("core", "core")
        assert c.allows("core", "checksums")
        assert not c.allows("core", "store")
        assert not c.allows("store", "checksums")

    def test_find_cycle(self):
        cyclic = contract(allowed=(
            ("core", ("store",)),
            ("store", ("checksums",)),
            ("checksums", ("core",)),
        ))
        cycle = cyclic.find_cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert contract(allowed=(("core", ("store",)),)).find_cycle() \
            is None


class TestRep311:
    def _lint(self, tree, files, c):
        return run_lint([tree(files)], rules=["REP311"], contract=c)

    def test_illegal_eager_import_is_flagged(self, tree):
        result = self._lint(tree, {
            "repro/checksums/crcmod.py": """
                from repro.store import runner

                def use():
                    return runner
            """,
        }, contract(allowed=(("store", ("checksums",)),)))
        assert active_rules(result) == ["REP311"]
        message = result.active[0].message
        assert "'checksums'" in message and "'store'" in message

    def test_declared_edge_is_allowed(self, tree):
        result = self._lint(tree, {
            "repro/store/runner.py": """
                from repro.checksums import crc

                def use():
                    return crc
            """,
        }, contract(allowed=(("store", ("checksums",)),)))
        assert result.active == []

    def test_lazy_import_is_exempt_by_default(self, tree):
        result = self._lint(tree, {
            "repro/checksums/crcmod.py": """
                def use():
                    from repro.store import runner
                    return runner
            """,
        }, contract(allowed=()))
        assert result.active == []

    def test_include_lazy_holds_function_imports_to_the_dag(self, tree):
        result = self._lint(tree, {
            "repro/checksums/crcmod.py": """
                def use():
                    from repro.store import runner
                    return runner
            """,
        }, contract(allowed=(), include_lazy=True))
        assert active_rules(result) == ["REP311"]

    def test_declared_cycle_reports_once_and_stops(self, tree):
        result = self._lint(tree, {
            "repro/checksums/crcmod.py": """
                from repro.store import runner

                def use():
                    return runner
            """,
        }, contract(allowed=(
            ("core", ("store",)),
            ("store", ("core",)),
        )))
        assert active_rules(result) == ["REP311"]
        finding = result.active[0]
        assert finding.path == "test-contract.toml"
        assert "cycle" in finding.message
        assert finding.snippet == "[contract.allowed]"

    def test_no_contract_means_inert(self, tree):
        result = run_lint([tree({
            "repro/checksums/crcmod.py": """
                from repro.store import runner

                def use():
                    return runner
            """,
        })], rules=["REP311"])
        assert result.active == []

    def test_unmapped_modules_are_ignored(self, tree):
        result = self._lint(tree, {
            "repro/analysis/stats.py": """
                from repro.store import runner

                def use():
                    return runner
            """,
        }, contract(allowed=()))
        # ``repro.analysis`` is outside the declared layers: no claim.
        assert result.active == []
