"""The CLI's exit-code contract for interrupted and degraded sweeps.

==========================  ====
outcome                     exit
==========================  ====
clean run                   0
lint findings               1
RunAborted (genuine bug)    2
deadline-exceeded partial   3
SIGINT after checkpoint     130
SIGTERM after checkpoint    143
==========================  ====
"""

from __future__ import annotations

import signal

import pytest

import repro.api
from repro.cli import main
from repro.core.checkpoint import SweepInterrupted
from repro.core.supervisor import RunAborted

_SPLICE = ["splice", "--profile", "stanford-u1", "--bytes", "40000"]


def _patch_splice(monkeypatch, exc):
    """Make the splice handler's experiment call raise ``exc``."""

    def boom(*args, **kwargs):
        raise exc

    # The facade resolves lazily; seed the attribute, then replace it.
    getattr(repro.api, "run_splice_experiment")
    monkeypatch.setattr(repro.api, "run_splice_experiment", boom)


class TestSignalExitCodes:
    def test_sigint_checkpoint_exits_130(self, monkeypatch, capsys):
        _patch_splice(monkeypatch, SweepInterrupted(
            "SIGINT", done=2, total=4, signum=signal.SIGINT,
        ))
        assert main(_SPLICE) == 130
        err = capsys.readouterr().err
        assert "checkpointed at shard 2/4" in err
        assert "--resume" in err

    def test_sigterm_checkpoint_exits_143(self, monkeypatch, capsys):
        _patch_splice(monkeypatch, SweepInterrupted(
            "SIGTERM", done=1, total=4, signum=signal.SIGTERM,
        ))
        assert main(_SPLICE) == 143

    def test_unknown_signum_degrades_to_130(self, monkeypatch, capsys):
        _patch_splice(monkeypatch, SweepInterrupted("interrupted"))
        assert main(_SPLICE) == 130


class TestRunAborted:
    def test_run_aborted_exits_2_with_one_line(self, monkeypatch, capsys):
        _patch_splice(monkeypatch, RunAborted("job 3 failed every rung"))
        assert main(_SPLICE) == 2
        err = capsys.readouterr().err
        assert "run aborted" in err and "job 3" in err


class TestDeadline:
    def test_deadline_partial_report_exits_3(self, capsys):
        # End to end: a microscopic budget stops the sweep before the
        # first shard; the report prints (partial) and the exit is 3.
        code = main([*_SPLICE, "--deadline", "0.0001"])
        captured = capsys.readouterr()
        assert code == 3
        assert "deadline" in captured.err
        assert "partial" in captured.err
        assert "degraded: deadline" in captured.out  # health footnote

    def test_generous_deadline_exits_0(self, capsys):
        assert main([*_SPLICE, "--deadline", "3600"]) == 0
        assert "deadline" not in capsys.readouterr().err


class TestFlagValidation:
    @pytest.mark.parametrize("flag", ["--deadline", "--shard-timeout"])
    @pytest.mark.parametrize("value", ["0", "-5", "nonsense"])
    def test_nonpositive_seconds_are_rejected(self, flag, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([*_SPLICE, flag, value])
        assert excinfo.value.code == 2
        assert "seconds" in capsys.readouterr().err

    def test_sweep_flags_parse_on_run_splice_chaos(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["run", "table4", "--shard-timeout", "2", "--deadline", "60",
             "--resume", "--no-journal"]
        )
        assert args.shard_timeout == 2.0 and args.deadline == 60.0
        assert args.resume is True and args.journal is False
        args = parser.parse_args(["splice", "--shard-timeout", "0.5"])
        assert args.shard_timeout == 0.5 and args.journal is True
        args = parser.parse_args(["chaos", "--shard-timeout", "1"])
        assert args.shard_timeout == 1.0
        assert not hasattr(args, "journal")  # chaos runs are ephemeral


class TestNoJournal:
    def test_no_journal_leaves_nothing_behind(self, tmp_path, capsys):
        code = main([*_SPLICE, "--no-journal",
                     "--cache-dir", str(tmp_path)])
        assert code == 0
        assert not (tmp_path / "journal").exists()

    def test_journaled_run_cleans_up_after_itself(self, tmp_path, capsys):
        code = main([*_SPLICE, "--cache-dir", str(tmp_path)])
        assert code == 0
        journal_dir = tmp_path / "journal"
        assert journal_dir.is_dir()  # the sweep was journaled...
        assert list(journal_dir.glob("*.journal")) == []  # ...and completed
