"""Tests for the repro-checksums command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sum_args(self):
        args = build_parser().parse_args(["sum", "f1", "f2", "-a", "crc32-aal5"])
        assert args.files == ["f1", "f2"]
        assert args.algorithm == "crc32-aal5"

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table99"])

    def test_placement_choices_match_the_enum(self):
        # The parser spells the choices literally so building it never
        # imports the packetizer; this pins the equivalence.
        from repro.api import ChecksumPlacement
        from repro.cli import _PLACEMENT_CHOICES

        assert list(_PLACEMENT_CHOICES) == [
            p.value for p in ChecksumPlacement
        ]

    def test_importing_the_cli_stays_light(self):
        # The warm-start contract (REP303): importing the CLI must not
        # pull in the splice engine.
        import subprocess
        import sys

        code = (
            "import sys; import repro.cli; "
            "hot = [m for m in sys.modules "
            "if m.startswith('repro.core.engine') "
            "or m.startswith('repro.sim')]; "
            "sys.exit(1 if hot else 0)"
        )
        proc = subprocess.run([sys.executable, "-c", code])
        assert proc.returncode == 0


class TestCommands:
    def test_algorithms(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "internet" in out and "crc32-aal5" in out

    def test_profiles(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "stanford-u1" in out

    def test_sum_file(self, tmp_path, capsys):
        path = tmp_path / "data.bin"
        path.write_bytes(b"123456789")
        assert main(["sum", str(path), "-a", "crc32-aal5"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("fc891918")

    def test_sum_default_algorithm(self, tmp_path, capsys):
        path = tmp_path / "data.bin"
        path.write_bytes(bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7]))
        assert main(["sum", str(path)]) == 0
        assert capsys.readouterr().out.startswith("ddf2")

    def test_run_epd(self, capsys):
        assert main(["run", "epd"]) == 0
        assert "Early Packet Discard" in capsys.readouterr().out

    def test_run_with_size(self, capsys):
        assert main(["run", "table5", "--bytes", "120000", "--seed", "2"]) == 0
        assert "locally congruent" in capsys.readouterr().out

    def test_splice(self, capsys):
        assert main([
            "splice", "--profile", "uniform", "--bytes", "60000",
        ]) == 0
        out = capsys.readouterr().out
        assert "total splices" in out
        assert "missed (transport)" in out

    def test_splice_trailer_fletcher(self, capsys):
        assert main([
            "splice", "--profile", "uniform", "--bytes", "40000",
            "--algorithm", "fletcher256", "--placement", "trailer",
        ]) == 0
        assert "fletcher256" in capsys.readouterr().out

    def test_engine_flag_parses_and_defaults_to_batch(self):
        parser = build_parser()
        for command in ("run", "splice", "bench"):
            args = parser.parse_args(
                [command, "table1"] if command == "run" else [command]
            )
            assert args.engine == "batch", command
        args = parser.parse_args(["splice", "--engine", "scalar"])
        assert args.engine == "scalar"
        with pytest.raises(SystemExit):
            parser.parse_args(["splice", "--engine", "simd"])

    def test_splice_engines_print_identical_counters(self, capsys):
        lines = {}
        for engine in ("scalar", "batch"):
            assert main([
                "splice", "--profile", "uniform", "--bytes", "6000",
                "--engine", engine,
            ]) == 0
            out = capsys.readouterr().out
            assert "engine             %s" % engine in out
            lines[engine] = [
                line for line in out.splitlines()
                if "engine  " not in line and "splices/sec" not in line
            ]
        assert lines["scalar"] == lines["batch"]


class TestNewCommands:
    def test_run_with_svg(self, tmp_path, capsys):
        path = tmp_path / "fig.svg"
        assert main(["run", "figure3", "--bytes", "100000",
                     "--svg", str(path)]) == 0
        assert path.read_text().startswith("<svg")

    def test_report(self, tmp_path, capsys):
        path = tmp_path / "out.md"
        assert main(["report", "-o", str(path), "--bytes", "60000",
                     "--only", "epd"]) == 0
        assert "epd" in path.read_text()

    def test_transfer(self, capsys):
        assert main(["transfer", "--bytes", "30000", "--loss", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "silently corrupted" in out
        assert "delivered clean" in out

    def test_splice_with_workers(self, capsys):
        assert main(["splice", "--profile", "uniform", "--bytes", "50000",
                     "--workers", "2"]) == 0
        assert "total splices" in capsys.readouterr().out


class TestCacheCommands:
    def test_workers_flags_parse_on_run_and_report(self):
        args = build_parser().parse_args(["run", "table1", "--workers", "4"])
        assert args.workers == 4
        args = build_parser().parse_args(["report", "--workers", "2"])
        assert args.workers == 2

    def test_cache_flag_parses_with_negation(self):
        args = build_parser().parse_args(["run", "table1", "--cache"])
        assert args.cache is True
        args = build_parser().parse_args(["run", "table1", "--no-cache"])
        assert args.cache is False
        args = build_parser().parse_args(["run", "table1"])
        assert args.cache is False

    def test_store_url_specs_parse(self):
        parser = build_parser()
        for spec in ("/tmp/cache", "file:///tmp/cache", "memory://shared",
                     "http://localhost:8970", "a,b", "stripe:a,b",
                     "readonly+/shared/ref,http://localhost:8970"):
            args = parser.parse_args(["run", "table1", "--store-url", spec])
            assert args.store_url == spec

    def test_store_url_rejects_bad_specs_at_parse_time(self):
        parser = build_parser()
        for spec in ("ftp://nope", "a,,b", "stripe:", "a,gopher://x"):
            with pytest.raises(SystemExit):
                parser.parse_args(["run", "table1", "--store-url", spec])

    def test_run_cached_twice_is_byte_identical(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "store")
        argv = ["run", "table5", "--bytes", "60000", "--seed", "2",
                "--cache", "--cache-dir", cache_dir]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_cache_stats(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "store")
        main(["run", "table5", "--bytes", "60000", "--seed", "2",
              "--cache", "--cache-dir", cache_dir])
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "results" in out and "shards" in out
        assert cache_dir in out

    def test_cache_audit_detects_injected_corruption(self, tmp_path, capsys):
        cache_dir = tmp_path / "store"
        main(["run", "table5", "--bytes", "60000", "--seed", "2",
              "--cache", "--cache-dir", str(cache_dir)])
        capsys.readouterr()
        assert main(["cache", "audit", "--cache-dir", str(cache_dir)]) == 0

        target = next(p for p in (cache_dir / "results").rglob("*") if p.is_file())
        blob = bytearray(target.read_bytes())
        blob[5] ^= 0x02
        target.write_bytes(bytes(blob))

        assert main(["cache", "audit", "--cache-dir", str(cache_dir)]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_cache_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "store")
        main(["run", "table5", "--bytes", "60000", "--seed", "2",
              "--cache", "--cache-dir", cache_dir])
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        total_line = next(l for l in out.splitlines() if l.startswith("total"))
        assert "0 objects" in total_line

    def test_report_with_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "store")
        out_path = tmp_path / "out.md"
        argv = ["report", "-o", str(out_path), "--bytes", "60000",
                "--only", "table5", "--cache", "--cache-dir", cache_dir]
        assert main(argv) == 0
        first = out_path.read_text()
        assert main(argv) == 0
        second = out_path.read_text()
        # identical modulo the per-run timing footnotes
        strip = lambda text: [l for l in text.splitlines()
                              if not l.startswith("*(regenerated")]
        assert strip(first) == strip(second)

    def test_splice_with_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "store")
        argv = ["splice", "--profile", "uniform", "--bytes", "50000",
                "--cache", "--cache-dir", cache_dir]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == cold


class TestLintCommand:
    @staticmethod
    def _seed(tmp_path):
        root = tmp_path / "src" / "repro" / "core"
        root.mkdir(parents=True)
        (root.parent / "__init__.py").write_text("", encoding="utf-8")
        (root / "__init__.py").write_text("", encoding="utf-8")
        (root / "sweep.py").write_text(
            "import random\n"
            "\n"
            "def pick(items):\n"
            "    return random.choice(items)\n",
            encoding="utf-8",
        )
        return str(tmp_path / "src")

    def test_unknown_rule_id_exits_2_and_lists_valid_ids(
            self, tmp_path, capsys):
        # Satellite contract: a typo'd --rules is usage error (2), not
        # "no findings" (0) nor "findings" (1) -- and the message hands
        # the operator the full catalogue to pick from.
        root = self._seed(tmp_path)
        code = main(["lint", root, "--rules", "REP999",
                     "--no-baseline", "--no-contract"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown rule id(s): REP999" in err
        from repro.lint import all_rules

        for rule in all_rules():
            assert rule.id in err

    def test_exit_codes_clean_findings_usage(self, tmp_path, capsys):
        root = self._seed(tmp_path)
        assert main(["lint", root, "--rules", "REP102",
                     "--no-baseline", "--no-contract"]) == 0
        assert main(["lint", root, "--rules", "REP101",
                     "--no-baseline", "--no-contract"]) == 1
        capsys.readouterr()

    def test_sarif_format(self, tmp_path, capsys):
        import json

        root = self._seed(tmp_path)
        assert main(["lint", root, "--format", "sarif",
                     "--no-baseline", "--no-contract"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        results = payload["runs"][0]["results"]
        assert any(r["ruleId"] == "REP101" for r in results)

    def test_cache_flag_round_trips(self, tmp_path, capsys):
        root = self._seed(tmp_path)
        cache = str(tmp_path / "lint-cache.json")
        argv = ["lint", root, "--cache", cache,
                "--no-baseline", "--no-contract"]
        assert main(argv) == 1
        cold = capsys.readouterr().out
        assert main(argv) == 1
        warm = capsys.readouterr().out
        assert "incremental cache" in warm
        # Findings identical; only the cache-traffic line differs.
        def strip(out):
            return [line for line in out.splitlines()
                    if "incremental cache" not in line]

        assert strip(warm) == strip(cold)

    def test_list_rules_covers_the_flow_family(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP111", "REP211", "REP311", "REP411", "REP601"):
            assert rule_id in out

    def test_bad_contract_file_exits_2(self, tmp_path, capsys):
        root = self._seed(tmp_path)
        contract = tmp_path / "broken.toml"
        contract.write_text("[contract\n", encoding="utf-8")
        assert main(["lint", root, "--no-baseline",
                     "--contract", str(contract)]) == 2
        assert "broken.toml" in capsys.readouterr().err
