"""``--metrics`` plumbing and the bench subcommand, end to end."""

import json

import pytest

from repro.cli import build_parser, main
from repro.telemetry.core import NULL, current


@pytest.fixture(autouse=True)
def _telemetry_stays_disabled():
    yield
    assert current() is NULL  # the CLI must always restore the no-op state


class TestMetricsFlag:
    def test_parses_on_all_simulation_commands(self):
        parser = build_parser()
        for argv in (["run", "table5", "--metrics", "json"],
                     ["report", "--metrics", "md"],
                     ["splice", "--metrics", "out.json"],
                     ["chaos", "--metrics", "out.md"]):
            assert parser.parse_args(argv).metrics == argv[-1]

    def test_absent_by_default(self):
        assert build_parser().parse_args(["run", "table5"]).metrics is None

    def test_splice_writes_json_file(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(["splice", "--profile", "uniform", "--bytes", "40000",
                     "--metrics", str(path)]) == 0
        snapshot = json.loads(path.read_text())
        assert snapshot["schema"] == "repro-telemetry/1"
        assert snapshot["counters"]["splice.splices"] > 0
        assert "splice.splices_rate" in snapshot["meters"]
        names = [entry["name"] for entry in snapshot["spans"]]
        # Journaled by default, the CLI sweep takes the sharded path;
        # ``--no-journal`` would surface plain ``experiment.run``.
        assert "experiment.sharded_run" in names

    def test_run_emits_markdown_to_stdout(self, capsys):
        # table1 exercises the instrumented splice engine; distribution
        # tables (table4-6) do not run it and report empty telemetry.
        assert main(["run", "table1", "--bytes", "60000", "--seed", "2",
                     "--metrics", "md"]) == 0
        out = capsys.readouterr().out
        assert "# Telemetry" in out and "## Counters" in out

    def test_metrics_off_means_no_registry(self, tmp_path, capsys):
        assert main(["splice", "--profile", "uniform",
                     "--bytes", "40000"]) == 0
        assert current() is NULL


class TestWorkerStability:
    def test_counter_totals_identical_across_workers(self, tmp_path, capsys):
        """The accounting invariant: counters and meter *amounts* are
        recorded in the parent from returned shard results, so they are
        bit-identical whether the sweep ran in-process or on a pool.
        (Span timings and histogram contents are timing-dependent and
        deliberately excluded.)
        """
        snapshots = {}
        for workers in (1, 2):
            path = tmp_path / ("metrics-w%d.json" % workers)
            argv = ["splice", "--profile", "uniform", "--bytes", "50000",
                    "--workers", str(workers), "--metrics", str(path)]
            assert main(argv) == 0
            snapshots[workers] = json.loads(path.read_text())
        assert snapshots[1]["counters"] == snapshots[2]["counters"]
        amounts = {
            workers: {
                name: entry["amount"]
                for name, entry in snapshot["meters"].items()
            }
            for workers, snapshot in snapshots.items()
        }
        assert amounts[1] == amounts[2]


class TestBenchCommand:
    def test_check_accepts_written_snapshot(self, tmp_path, capsys):
        from repro.telemetry.bench import write_snapshot
        from tests.telemetry.test_bench import _payload

        path = write_snapshot(_payload(), tmp_path)
        assert main(["bench", "--check", str(path)]) == 0
        assert "schema repro-bench/1 ok" in capsys.readouterr().out

    def test_check_rejects_drift(self, tmp_path, capsys):
        from tests.telemetry.test_bench import _payload

        payload = _payload()
        payload["extra"] = True
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        assert main(["bench", "--check", str(path)]) == 1
        assert "drift" in capsys.readouterr().err
