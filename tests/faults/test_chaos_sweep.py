"""End-to-end chaos: sweeps under injected faults finish bit-identical.

The acceptance test of the robustness layer, and the test-suite twin of
``repro-checksums chaos``: run the splice sweep while the fault plan
crashes workers, flips stored bits, and fills the disk — then assert
the merged counters equal a fault-free run's, that the plan replays
deterministically, and that :class:`RunHealth` recorded the ride.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.experiment import run_splice_experiment
from repro.core.supervisor import RunHealth
from repro.faults.injector import wrap_run_store
from repro.faults.plan import named_plan
from repro.protocols.packetizer import PacketizerConfig
from repro.store.runner import RunStore
from tests.conftest import make_filesystem

pytestmark = pytest.mark.chaos

KINDS = [("english", 6_000), ("gmon", 5_000), ("c-source", 6_000), ("zero-heavy", 5_000)]


@pytest.fixture
def fs():
    return make_filesystem(KINDS, seed=4, name="chaosbox")


@pytest.fixture
def config():
    return PacketizerConfig()


@pytest.fixture
def clean_counters(fs, config):
    return run_splice_experiment(fs, config).counters


def chaotic_run(fs, config, root, plan_name, fault_seed, workers=None):
    plan = named_plan(plan_name, seed=fault_seed)
    health = RunHealth()
    store = wrap_run_store(RunStore(root), plan, health)
    result = run_splice_experiment(
        fs, config, workers=workers, store=store, faults=plan, health=health
    )
    return result, plan, health


class TestSequentialChaos:
    def test_monkey_sweep_is_bit_identical(self, tmp_path, fs, config, clean_counters):
        result, plan, health = chaotic_run(
            fs, config, tmp_path / "store", "monkey", fault_seed=1
        )
        assert result.counters == clean_counters
        assert len(plan.log) > 0, "the monkey plan must actually inject"
        assert health.faults_injected > 0
        assert health.eventful

    def test_same_seed_injects_identically(self, tmp_path, fs, config, clean_counters):
        a_result, a_plan, _ = chaotic_run(
            fs, config, tmp_path / "a", "monkey", fault_seed=2
        )
        b_result, b_plan, _ = chaotic_run(
            fs, config, tmp_path / "b", "monkey", fault_seed=2
        )
        # Sequential runs drive the plan in a deterministic op order,
        # so the *live* fault logs must replay move for move.
        assert a_plan.fingerprint() == b_plan.fingerprint()
        assert [e.as_tuple() for e in a_plan.log] == [
            e.as_tuple() for e in b_plan.log
        ]
        assert a_result.counters == b_result.counters == clean_counters

    def test_bitrot_resume_evicts_and_recomputes(
        self, tmp_path, fs, config, clean_counters
    ):
        root = tmp_path / "store"
        # Populate cleanly, then resume through a read-corrupting plan.
        run_splice_experiment(fs, config, store=RunStore(root))
        # fault_seed=1 schedules bit flips on shard reads (seed 0's
        # only hit lands on the manifest, which degrades differently).
        result, plan, health = chaotic_run(fs, config, root, "bitrot", fault_seed=1)
        assert result.counters == clean_counters
        assert health.evictions > 0, "bit rot over a warm store must evict"

    def test_full_disk_never_aborts(self, tmp_path, fs, config, clean_counters):
        result, _, health = chaotic_run(
            fs, config, tmp_path / "store", "full-disk", fault_seed=0
        )
        assert result.counters == clean_counters
        assert health.store_errors > 0


class TestPooledChaos:
    def test_flaky_workers_with_pool(self, tmp_path, fs, config, clean_counters):
        result, plan, health = chaotic_run(
            fs, config, tmp_path / "store", "flaky-workers",
            fault_seed=3, workers=2,
        )
        assert result.counters == clean_counters
        assert len(plan.log) > 0


class TestChaosCLI:
    def test_chaos_command_succeeds_and_reports(self, tmp_path, capsys):
        code = main([
            "chaos", "--profile", "stanford-u1", "--bytes", "60000",
            "--plan", "monkey", "--workers", "2",
            "--cache-dir", str(tmp_path / "chaos"),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert out.count("counters identical") == 2  # populate + resume
        assert "plan replay        deterministic" in out
        assert "faults cost time, never correctness" in out
        assert "run health" in out

    def test_chaos_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["chaos"])
        assert args.plan == "monkey"
        assert args.fault_seed == 0
        assert args.workers == 2

    def test_chaos_parser_rejects_unknown_plan(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--plan", "gremlins"])
