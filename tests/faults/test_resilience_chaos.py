"""The self-healing data plane under the seeded network adversary.

Satellite coverage: ``FaultyBackend`` slowread/conntimeout against
per-op deadlines — the hedged read wins, the slow replica's breaker
opens after the threshold, the half-open probe reintegrates it, all
replayable from one seed.  Chaos acceptance: a sweep under the
``flaky-network`` plan is bit-identical to a clean run at ``--workers
1`` and ``4``, and an outage-spooled store flushes to byte-identical
with a never-faulted one.
"""

from __future__ import annotations

import hashlib
import warnings
from pathlib import Path

import pytest

from repro.core.experiment import run_splice_experiment
from repro.core.supervisor import RunHealth
from repro.faults.injector import FaultyBackend
from repro.faults.plan import FaultPlan, named_plan
from repro.protocols.packetizer import PacketizerConfig
from repro.store.backends.local import LocalBackend
from repro.store.backends.memory import MemoryBackend
from repro.store.backends.multiplex import MultiplexBackend
from repro.store.framing import frame_object
from repro.store.resilience import ResilienceController, RetryPolicy
from repro.store.runner import RunStore
from repro.store.spool import WriteSpool, drain_spool
from repro.telemetry.core import collect
from tests.conftest import make_filesystem


def stored(backend, payload=b"hedged payload"):
    key = hashlib.sha256(payload).hexdigest()
    backend.put_frame(key, frame_object(payload))
    return key


def slow_plan(seed=0, max_faults=1000, slow_seconds=0.02):
    return FaultPlan(seed, store_rates={"slowread": 1.0},
                     max_faults=max_faults, slow_seconds=slow_seconds)


def hedging_stack(max_faults=1000, failure_threshold=3, cooldown_ops=4):
    """A slow replica in front of a fast one, hedging enabled."""
    controller = ResilienceController(
        failure_threshold=failure_threshold,
        cooldown_ops=cooldown_ops,
        hedge_threshold=0.005,
    )
    fast = MemoryBackend()
    key = stored(fast)
    slow_inner = MemoryBackend()
    stored(slow_inner)
    slow = FaultyBackend(slow_inner, slow_plan(max_faults=max_faults))
    mux = MultiplexBackend([slow, fast], resilience=controller)
    return mux, controller, slow, key


class TestHedgedReads:
    def test_hedge_wins_past_the_slow_read_threshold(self):
        mux, controller, slow, key = hedging_stack()
        with collect() as telemetry:
            frame = mux.get_frame(key)
        assert frame == slow.inner.get_frame(key)  # same bytes either way
        counters = telemetry.snapshot()["counters"]
        assert counters["resilience.hedge.fired"] == 1
        assert counters["resilience.hedge.wins"] == 1
        assert controller.breaker_for(slow, 0).slow_reads == 1

    def test_slow_reads_open_the_breaker_after_the_threshold(self):
        mux, controller, slow, key = hedging_stack(failure_threshold=3)
        for _ in range(3):
            mux.get_frame(key)
        breaker = controller.breaker_for(slow, 0)
        assert breaker.state == "open"
        assert breaker.slow_reads == 3
        # Quarantined: the next read never touches the slow replica.
        injected = len(slow.plan.log)
        mux.get_frame(key)
        assert len(slow.plan.log) == injected

    def test_half_open_probe_reintegrates_a_healed_replica(self):
        # The latency plan dries up after the 3 breaker-tripping
        # reads, so the half-open probe meets a fast replica again.
        mux, controller, slow, key = hedging_stack(
            max_faults=3, failure_threshold=3, cooldown_ops=4
        )
        for _ in range(3):
            mux.get_frame(key)    # slow, hedged, breaker opens
        for _ in range(4):
            mux.get_frame(key)    # cool-down ticks; 4th spends the probe
        breaker = controller.breaker_for(slow, 0)
        assert breaker.state == "closed"
        assert [(f, t) for _, f, t, _ in breaker.transitions] == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]

    def test_hedge_loss_still_returns_the_slow_frame(self):
        """With no second healthy replica the slow bytes still serve."""
        controller = ResilienceController(failure_threshold=5,
                                          hedge_threshold=0.005)
        inner = MemoryBackend()
        key = stored(inner)
        slow = FaultyBackend(inner, slow_plan())
        mux = MultiplexBackend([slow], resilience=controller)
        with collect() as telemetry:
            assert mux.get_frame(key) == inner.get_frame(key)
        counters = telemetry.snapshot()["counters"]
        assert counters["resilience.hedge.fired"] == 1
        assert counters["resilience.hedge.losses"] == 1

    def test_whole_scenario_replays_from_one_seed(self):
        def drive():
            mux, controller, slow, key = hedging_stack(
                max_faults=3, failure_threshold=3, cooldown_ops=4
            )
            for _ in range(7):
                mux.get_frame(key)
            breaker = controller.breaker_for(slow, 0)
            return (
                [(op, f, t) for op, f, t, _ in breaker.transitions],
                slow.plan.fingerprint(),
                breaker.slow_reads,
            )

        assert drive() == drive()


class TestDeadlines:
    """conntimeout faults against the per-op retry deadline."""

    def timeout_replica(self):
        inner = MemoryBackend()
        key = stored(inner)
        plan = FaultPlan(0, store_rates={"conntimeout": 1.0},
                         max_faults=1000)
        return FaultyBackend(inner, plan), key

    def test_op_deadline_cuts_the_retry_budget(self):
        faulty, key = self.timeout_replica()
        # Backoff is at least base_delay/2 = 25ms; a 10ms op deadline
        # means no retry is ever started, whatever the jitter draw.
        policy = RetryPolicy("http", max_attempts=4, base_delay=0.05,
                             op_deadline=0.01, seed=3)
        with collect() as telemetry:
            with pytest.raises(OSError):
                policy.run("get", lambda: faulty.get_frame(key))
        counters = telemetry.snapshot()["counters"]
        assert counters["resilience.http.attempts"] == 1
        assert counters["resilience.http.deadline_exhausted"] == 1

    def test_without_a_deadline_the_full_budget_is_spent(self):
        faulty, key = self.timeout_replica()
        policy = RetryPolicy("http", max_attempts=4, base_delay=0.0,
                             seed=3)
        with collect() as telemetry:
            with pytest.raises(OSError):
                policy.run("get", lambda: faulty.get_frame(key))
        assert telemetry.snapshot()["counters"][
            "resilience.http.attempts"] == 4

    def test_timeouts_feed_the_breaker_through_the_mux(self):
        controller = ResilienceController(failure_threshold=2,
                                          cooldown_ops=100)
        faulty, key = self.timeout_replica()
        healthy = MemoryBackend()
        stored(healthy)
        mux = MultiplexBackend([faulty, healthy], resilience=controller)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for _ in range(2):
                assert mux.get_frame(key)
        assert controller.breaker_for(faulty, 0).state == "open"


def tree_digests(root):
    """Relative path -> sha256, for byte-identity store comparisons."""
    out = {}
    for path in sorted(Path(root).rglob("*")):
        if path.is_file():
            digest = hashlib.sha256(path.read_bytes()).hexdigest()
            out[str(path.relative_to(root))] = digest
    return out


@pytest.mark.chaos
class TestResilientSweepChaos:
    """Acceptance: faults cost time and warnings, never bytes."""

    KINDS = [("english", 6_000), ("c-source", 6_000), ("zero-heavy", 5_000)]

    @pytest.fixture
    def fs(self):
        return make_filesystem(self.KINDS, seed=11, name="healbox")

    @pytest.fixture
    def config(self):
        return PacketizerConfig()

    def resilient_store(self, tmp_path, label, plan, spool=None):
        controller = ResilienceController(
            failure_threshold=3,
            cooldown_ops=8,
            hedge_threshold=0.01,
            spool=spool,
            seed=plan.seed,
        )
        flaky = FaultyBackend(LocalBackend(tmp_path / label / "flaky"), plan)
        steady = LocalBackend(tmp_path / label / "steady")
        mux = MultiplexBackend([flaky, steady], resilience=controller)
        return RunStore(backend=mux), controller

    @pytest.mark.parametrize("workers", [1, 4])
    def test_flaky_network_sweep_is_bit_identical(
        self, tmp_path, fs, config, workers
    ):
        clean = run_splice_experiment(
            fs, config, store=RunStore(tmp_path / "clean"), workers=workers
        ).counters

        plan = named_plan("flaky-network", seed=5)
        store, controller = self.resilient_store(
            tmp_path, "w%d" % workers, plan
        )
        health = RunHealth()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = run_splice_experiment(
                fs, config, store=store, faults=plan,
                health=health, workers=workers,
            )
        assert result.counters == clean
        assert len(plan.log) > 0, "the flaky-network plan must inject"
        assert health.faults_injected > 0

    def test_breaker_ledger_replays_from_one_seed(self, tmp_path, fs, config):
        def drive(label):
            plan = named_plan("flaky-network", seed=9)
            store, controller = self.resilient_store(tmp_path, label, plan)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                result = run_splice_experiment(
                    fs, config, store=store, faults=plan
                )
            ledgers = [
                [(op, f, t) for op, f, t, _ in breaker.transitions]
                for breaker in controller.breakers.values()
            ]
            return result.counters, ledgers, plan.fingerprint()

        assert drive("replay-a") == drive("replay-b")

    def test_outage_spool_flushes_to_byte_identical_store(
        self, tmp_path, fs, config
    ):
        """The strong acceptance bar: lose the store, lose nothing."""
        clean_root = tmp_path / "never-faulted"
        clean = run_splice_experiment(
            fs, config, store=RunStore(clean_root)
        ).counters

        # One replica, completely dark for the whole sweep: every GET
        # and PUT errors, so the breaker opens and writes spool.
        plan = named_plan("replica-outage", seed=5)
        outage_root = tmp_path / "outage-replica"
        spool = WriteSpool(tmp_path / "spool")
        controller = ResilienceController(
            failure_threshold=3, cooldown_ops=10_000, spool=spool, seed=5
        )
        dark = FaultyBackend(LocalBackend(outage_root), plan)
        mux = MultiplexBackend([dark], resilience=controller)
        health = RunHealth()
        store = RunStore(backend=mux)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = run_splice_experiment(
                fs, config, store=store, faults=plan, health=health
            )

        # Results are unharmed; the replica is empty; the writes are
        # queued locally (the end-of-sweep drain met a dead replica).
        assert result.counters == clean
        assert not spool.empty
        assert any("spooling locally" in note
                   for note in health.degradations)

        # The outage ends: flush the spool into the healed replica.
        report = drain_spool(LocalBackend(outage_root), spool)
        assert report.clean
        assert spool.empty
        assert tree_digests(outage_root) == tree_digests(clean_root)
