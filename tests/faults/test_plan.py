"""FaultPlan: determinism, bounds, scripts, and the named plans."""

from __future__ import annotations

import pytest

from repro.faults.plan import (
    KIND_TO_OP,
    NAMED_PLANS,
    FaultEvent,
    FaultPlan,
    named_plan,
    plan_names,
)


def drive(plan, store_ops=50, jobs=20, attempts=3):
    """Exercise a plan over a fixed op grid; return its event tuples."""
    for op in ("get", "put", "delete"):
        for _ in range(store_ops):
            plan.store_fault(op)
    for job in range(jobs):
        for attempt in range(attempts):
            plan.worker_directive(job, attempt)
    return [event.as_tuple() for event in plan.log]


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        kwargs = dict(
            store_rates={"bitflip": 0.3, "enospc": 0.2, "enoent": 0.4},
            worker_rates={"raise": 0.3, "crash": 0.1},
        )
        a = drive(FaultPlan(7, **kwargs))
        b = drive(FaultPlan(7, **kwargs))
        assert a == b
        assert a  # the rates are high enough that something fired

    def test_different_seed_different_schedule(self):
        kwargs = dict(store_rates={"bitflip": 0.3}, worker_rates={"raise": 0.3})
        assert drive(FaultPlan(1, **kwargs)) != drive(FaultPlan(2, **kwargs))

    def test_fingerprint_tracks_log(self):
        plan = FaultPlan(3, store_rates={"bitflip": 0.5})
        empty = plan.fingerprint()
        drive(plan)
        assert plan.log and plan.fingerprint() != empty

    def test_preview_is_pure_and_replayable(self):
        plan = named_plan("monkey", seed=11)
        first = plan.preview()
        # preview() must not consume the plan's own op slots...
        assert plan.log == [] and plan._op_counts == {}
        # ...and must agree with an independent same-seed instance.
        assert first == named_plan("monkey", seed=11).preview()
        assert first != named_plan("monkey", seed=12).preview()

    def test_clone_has_same_parameters_no_history(self):
        plan = FaultPlan(5, store_rates={"bitflip": 0.9}, name="x")
        drive(plan)
        twin = plan.clone()
        assert twin.log == []
        assert twin.seed == plan.seed and twin.name == "x"
        assert drive(twin) == drive(plan.clone())


class TestBounds:
    def test_max_faults_caps_the_schedule(self):
        plan = FaultPlan(0, store_rates={"bitflip": 1.0}, max_faults=4)
        for _ in range(50):
            plan.store_fault("get")
        assert len(plan.log) == 4

    def test_worker_faults_stop_after_max_faulty_attempts(self):
        plan = FaultPlan(0, worker_rates={"raise": 1.0}, max_faulty_attempts=2)
        assert plan.worker_directive(0, 0) is not None
        assert plan.worker_directive(0, 1) is not None
        assert plan.worker_directive(0, 2) is None
        assert plan.worker_directive(0, 99) is None

    def test_fallback_attempt_none_never_faults(self):
        plan = FaultPlan(0, worker_rates={"raise": 1.0}, worker_script={0: "kill"})
        assert plan.worker_directive(0, None) is None
        assert plan.log == []

    def test_worker_decisions_memoized_and_logged_once(self):
        plan = FaultPlan(0, worker_rates={"raise": 1.0})
        first = plan.worker_directive(3, 0)
        again = plan.worker_directive(3, 0)  # pool respawn re-asks
        assert first == again == ("raise", None)
        assert len(plan.log) == 1


class TestScripts:
    def test_script_pins_kind_on_first_attempt_only(self):
        plan = FaultPlan(0, worker_script={2: "kill"}, max_faulty_attempts=3)
        assert plan.worker_directive(2, 0) == ("kill", None)
        assert plan.worker_directive(2, 1) is None  # script is attempt 0 only
        assert plan.worker_directive(1, 0) is None  # other jobs untouched

    def test_stall_directive_carries_duration(self):
        plan = FaultPlan(0, worker_script={0: "stall"}, stall_seconds=0.25)
        assert plan.worker_directive(0, 0) == ("stall", 0.25)

    def test_unknown_kinds_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kinds"):
            FaultPlan(0, store_rates={"gremlins": 1.0})
        with pytest.raises(ValueError, match="unknown fault kinds"):
            FaultPlan(0, worker_rates={"segfault": 1.0})
        with pytest.raises(ValueError, match="unknown fault kinds"):
            FaultPlan(0, worker_script={0: "explode"})


class TestStoreDecisions:
    def test_kinds_fire_only_on_their_op(self):
        plan = FaultPlan(0, store_rates={kind: 1.0 for kind in KIND_TO_OP})
        kind = plan.store_fault("delete")
        assert kind == "enoent"  # the only delete-kind
        for event in plan.log:
            op = event.op.split(".", 1)[1]
            assert KIND_TO_OP[event.kind] == op

    def test_rate_zero_never_fires(self):
        plan = FaultPlan(0, store_rates={"bitflip": 0.0})
        assert all(plan.store_fault("get") is None for _ in range(200))

    def test_rate_one_always_fires(self):
        plan = FaultPlan(0, store_rates={"eio": 1.0})
        assert all(plan.store_fault("get") == "eio" for _ in range(20))


class TestNamedPlans:
    def test_plan_names_sorted_and_complete(self):
        assert plan_names() == sorted(NAMED_PLANS)
        assert {"bitrot", "full-disk", "flaky-workers", "monkey"} <= set(plan_names())

    @pytest.mark.parametrize("name", sorted(NAMED_PLANS))
    def test_each_named_plan_instantiates_and_replays(self, name):
        plan = named_plan(name, seed=9)
        assert plan.name == name
        assert plan.preview() == named_plan(name, seed=9).preview()

    def test_flaky_workers_suggests_a_shard_timeout(self):
        assert named_plan("flaky-workers").shard_timeout is not None

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown fault plan"):
            named_plan("does-not-exist")

    def test_channel_field_defaults_to_none(self):
        assert FaultPlan(0).channel is None
        assert named_plan("bitrot").channel is None

    def test_channel_paired_plans_name_their_link(self):
        for name in ("bursty-link", "reordering-link", "congested-queue"):
            assert name in plan_names()
            assert named_plan(name).channel == name

    def test_clone_carries_the_channel(self):
        plan = named_plan("bursty-link", seed=4)
        assert plan.clone().channel == "bursty-link"


def test_event_as_tuple():
    assert FaultEvent("store.get", 4, "bitflip").as_tuple() == (
        "store.get", 4, "bitflip",
    )
