"""Remote-backend faults: flaky networks cost time, never correctness.

Unit coverage for the remote fault kinds (connection resets, timeouts,
latency spikes, stale replicas) on :class:`FaultyBackend`, plus the
satellite chaos test: a two-replica multiplexer with one replica
wrapped in the ``flaky-network`` plan finishes the sweep bit-identical
to a clean run while RunHealth records the degradation.
"""

from __future__ import annotations

import errno
import hashlib

import pytest

from repro.core.experiment import run_splice_experiment
from repro.core.supervisor import RunHealth
from repro.faults.injector import FaultyBackend
from repro.faults.plan import KIND_TO_OP, FaultPlan, named_plan
from repro.protocols.packetizer import PacketizerConfig
from repro.store.backends.local import LocalBackend
from repro.store.backends.memory import MemoryBackend
from repro.store.backends.multiplex import MultiplexBackend
from repro.store.framing import frame_object, unframe_object
from repro.store.runner import RunStore
from tests.conftest import make_filesystem


def stored(backend, payload=b"remote fault payload"):
    key = hashlib.sha256(payload).hexdigest()
    backend.put_frame(key, frame_object(payload))
    return key


def always(kind):
    """A plan that injects ``kind`` on every eligible operation."""
    return FaultPlan(0, store_rates={kind: 1.0}, max_faults=1000)


class TestRemoteFaultKinds:
    def test_new_kinds_are_read_side(self):
        for kind in ("connreset", "conntimeout", "slowread", "stale"):
            assert KIND_TO_OP[kind] == "get"

    def test_connreset_raises_connection_reset(self):
        inner = MemoryBackend()
        key = stored(inner)
        faulty = FaultyBackend(inner, always("connreset"))
        with pytest.raises(ConnectionResetError):
            faulty.get_frame(key)
        # The wrapped replica still holds the intact frame.
        payload, _ = unframe_object(inner.get_frame(key))
        assert payload == b"remote fault payload"

    def test_conntimeout_raises_oserror(self):
        inner = MemoryBackend()
        key = stored(inner)
        faulty = FaultyBackend(inner, always("conntimeout"))
        with pytest.raises(OSError) as excinfo:
            faulty.get_frame(key)
        assert excinfo.value.errno == errno.ETIMEDOUT

    def test_slowread_is_late_but_correct(self):
        inner = MemoryBackend()
        key = stored(inner)
        plan = FaultPlan(0, store_rates={"slowread": 1.0}, slow_seconds=0.001)
        faulty = FaultyBackend(inner, plan)
        assert faulty.get_frame(key) == inner.get_frame(key)

    def test_stale_serves_the_first_stored_frame(self):
        inner = MemoryBackend()
        key = "feed" * 8
        old = frame_object(b"version one")
        new = frame_object(b"version two")
        faulty = FaultyBackend(inner, always("stale"))
        faulty.put_frame(key, old)
        faulty.put_frame(key, new)
        assert inner.get_frame(key) == new
        served = faulty.get_frame(key)
        assert served == old
        payload, _ = unframe_object(served)  # stale, but it verifies
        assert payload == b"version one"

    def test_inflight_corruption_leaves_the_replica_intact(self):
        for kind in ("bitflip", "truncate"):
            inner = MemoryBackend()
            key = stored(inner)
            faulty = FaultyBackend(inner, always(kind))
            assert faulty.get_frame(key) != inner.get_frame(key)
            payload, _ = unframe_object(inner.get_frame(key))
            assert payload == b"remote fault payload"

    def test_injections_count_into_health(self):
        inner = MemoryBackend()
        key = stored(inner)
        health = RunHealth()
        faulty = FaultyBackend(inner, always("connreset"), health)
        with pytest.raises(ConnectionResetError):
            faulty.get_frame(key)
        assert health.faults_injected == 1

    def test_sub_shares_the_plan(self):
        faulty = FaultyBackend(MemoryBackend(), always("connreset"))
        child = faulty.sub("objects")
        assert isinstance(child, FaultyBackend)
        assert child.plan is faulty.plan

    def test_flaky_network_plan_replays_deterministically(self):
        plan = named_plan("flaky-network", seed=7)
        assert plan.preview() == named_plan("flaky-network", seed=7).preview()
        assert plan.preview() != named_plan("flaky-network", seed=8).preview()


class TestFlakyReplicaChaos:
    """Satellite acceptance: the sweep degrades, the results don't."""

    KINDS = [("english", 6_000), ("c-source", 6_000), ("zero-heavy", 5_000)]

    @pytest.fixture
    def fs(self):
        return make_filesystem(self.KINDS, seed=11, name="netbox")

    @pytest.fixture
    def config(self):
        return PacketizerConfig()

    def test_sweep_degrades_to_the_healthy_replica(
        self, tmp_path, fs, config
    ):
        clean = run_splice_experiment(
            fs, config, store=RunStore(tmp_path / "clean")
        ).counters

        plan = named_plan("flaky-network", seed=5)
        health = RunHealth()
        flaky = FaultyBackend(LocalBackend(tmp_path / "flaky"), plan)
        mux = MultiplexBackend([flaky, LocalBackend(tmp_path / "steady")])
        store = RunStore(backend=mux)
        store.attach_health(health)

        with pytest.warns(RuntimeWarning, match="replica"):
            result = run_splice_experiment(
                fs, config, store=store, faults=plan, health=health
            )
        assert result.counters == clean
        assert len(plan.log) > 0, "the flaky-network plan must inject"
        assert health.faults_injected > 0
        assert health.degradations, "the multiplexer reported the replica"

    def test_same_seed_injects_identically(self, tmp_path, fs, config):
        outputs = []
        for label in ("a", "b"):
            plan = named_plan("flaky-network", seed=5)
            flaky = FaultyBackend(
                LocalBackend(tmp_path / label / "flaky"), plan
            )
            mux = MultiplexBackend(
                [flaky, LocalBackend(tmp_path / label / "steady")]
            )
            result = run_splice_experiment(
                fs, config, store=RunStore(backend=mux), faults=plan
            )
            outputs.append((result.counters, plan.fingerprint()))
        assert outputs[0] == outputs[1]
