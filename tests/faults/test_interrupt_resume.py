"""Interrupt/resume chaos: a killed sweep loses time, never shards.

Two layers of assurance:

* a **property test** interrupts a sequential sweep at *every* shard
  boundary in turn (the ``sigterm`` fault directive delivers a real
  signal under an installed :func:`sweep_guard`), then resumes at
  ``--workers 1`` and ``--workers 4`` — every resumed run must be
  bit-identical (JSON and all) to the uninterrupted sweep;
* a **subprocess test** SIGTERMs a real ``repro-checksums splice``
  mid-run, asserts the conventional exit code 143 and the
  ``checkpointed at shard k/N`` diagnostic, then re-runs with
  ``--resume`` and compares stdout byte-for-byte with an uninterrupted
  invocation.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.checkpoint import SweepInterrupted, sweep_guard
from repro.core.experiment import run_splice_experiment
from repro.faults.plan import FaultPlan
from repro.protocols.packetizer import PacketizerConfig
from repro.store.journal import ShardJournal, journal_path
from tests.conftest import make_filesystem

pytestmark = pytest.mark.chaos

KINDS = [
    ("english", 6_000), ("gmon", 5_000),
    ("c-source", 6_000), ("zero-heavy", 5_000),
]
N_SHARDS = len(KINDS)


@pytest.fixture
def fs():
    return make_filesystem(KINDS, seed=31, name="interruptbox")


@pytest.fixture
def config():
    return PacketizerConfig()


@pytest.fixture
def clean(fs, config):
    return run_splice_experiment(fs, config).counters


@pytest.mark.parametrize("boundary", range(N_SHARDS))
@pytest.mark.parametrize("resume_workers", [None, 4])
def test_sigterm_at_every_boundary_then_resume_bit_identical(
    tmp_path, fs, config, clean, boundary, resume_workers
):
    path = journal_path(tmp_path, fs.name, config)
    plan = FaultPlan(0, worker_script={boundary: "sigterm"})

    with sweep_guard():
        with pytest.raises(SweepInterrupted) as excinfo:
            run_splice_experiment(
                fs, config, faults=plan, journal=ShardJournal(path)
            )
    # The interrupted shard itself completes before the stop lands.
    assert excinfo.value.done == boundary + 1
    assert excinfo.value.total == N_SHARDS
    assert path.is_file()

    resumed = run_splice_experiment(
        fs, config, workers=resume_workers,
        journal=ShardJournal(path), resume=True,
    )
    # Bit-identical: dataclass equality AND canonical JSON.
    assert resumed.counters == clean
    assert resumed.counters.to_json() == clean.to_json()
    assert not resumed.health.eventful
    assert not path.is_file()


def test_double_interrupt_still_converges(tmp_path, fs, config, clean):
    """Interrupt, resume, interrupt again later, resume again."""
    path = journal_path(tmp_path, fs.name, config)
    for boundary in (0, 2):
        plan = FaultPlan(0, worker_script={boundary: "sigterm"})
        with sweep_guard(resume=True):
            with pytest.raises(SweepInterrupted):
                run_splice_experiment(
                    fs, config, faults=plan,
                    journal=ShardJournal(path), resume=True,
                )
        assert path.is_file()
    resumed = run_splice_experiment(
        fs, config, journal=ShardJournal(path), resume=True
    )
    assert resumed.counters == clean


# ---------------------------------------------------------------------------
# the real thing: SIGTERM a subprocess sweep, resume it
# ---------------------------------------------------------------------------

REPO_ROOT = Path(__file__).resolve().parents[2]

_SPLICE_ARGS = [
    "splice", "--profile", "stanford-u1", "--bytes", "600000",
    "--seed", "5", "--mss", "256",
]


def _run_cli(args, cache_root, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_CHECKSUMS_CACHE"] = str(cache_root)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        env=env, cwd=str(REPO_ROOT),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        **kwargs,
    )


@pytest.mark.slow
def test_cli_sigterm_checkpoint_and_resume_stdout_identical(tmp_path):
    cache_root = tmp_path / "cache"
    journal_dir = cache_root / "journal"

    # Uninterrupted reference run.
    reference = _run_cli(_SPLICE_ARGS, cache_root)
    ref_out, ref_err = reference.communicate(timeout=300)
    assert reference.returncode == 0, ref_err.decode()

    # Interrupted run: wait for the journal to gain entries, then TERM.
    victim = _run_cli(_SPLICE_ARGS, cache_root)
    deadline = time.monotonic() + 120
    journal_file = None
    while time.monotonic() < deadline and victim.poll() is None:
        files = list(journal_dir.glob("*.journal"))
        if files and files[0].stat().st_size > 200:
            journal_file = files[0]
            break
        time.sleep(0.01)
    if victim.poll() is not None or journal_file is None:
        victim.kill()
        victim.communicate()
        pytest.skip("sweep finished before it could be interrupted")
    victim.send_signal(signal.SIGTERM)
    out, err = victim.communicate(timeout=300)
    if victim.returncode == 0:
        pytest.skip("SIGTERM landed after the final shard boundary")
    assert victim.returncode == 143, err.decode()
    assert "checkpointed at shard" in err.decode()
    assert "--resume" in err.decode()
    assert journal_file.is_file()  # the checkpoint survived the exit

    # Resume: byte-identical stdout, journal consumed.
    resumed = _run_cli([*_SPLICE_ARGS, "--resume"], cache_root)
    res_out, res_err = resumed.communicate(timeout=300)
    assert resumed.returncode == 0, res_err.decode()
    assert res_out == ref_out
    assert not journal_file.is_file()
