"""FaultyObjectStore and the worker shim: injected harm, intact truth."""

from __future__ import annotations

import errno
import multiprocessing

import pytest

from repro.core.supervisor import RunHealth
from repro.faults.injector import (
    FaultInjected,
    FaultyObjectStore,
    SimulatedCrash,
    apply_directive,
    worker_prepare,
    wrap_run_store,
)
from repro.faults.plan import FaultPlan
from repro.store.cache import ResultCache
from repro.store.objstore import IntegrityError, ObjectStore
from repro.store.runner import RunStore


@pytest.fixture
def store(tmp_path):
    return ObjectStore(tmp_path / "objects")


def plan_for(kind, rate=1.0, **kwargs):
    from repro.faults.plan import KIND_TO_OP

    rates = {kind: rate}
    if kind in KIND_TO_OP:
        return FaultPlan(0, store_rates=rates, max_faults=10_000, **kwargs)
    return FaultPlan(0, worker_rates=rates, max_faults=10_000, **kwargs)


class TestReadFaults:
    def test_bitflip_detected_disk_intact(self, store):
        digest = store.put(b"hello, splice world")
        faulty = FaultyObjectStore(store, plan_for("bitflip"))
        with pytest.raises(IntegrityError):
            faulty.get(digest)
        # The fault corrupted bytes in flight only: disk is untouched.
        assert store.get(digest) == b"hello, splice world"

    def test_truncate_detected_disk_intact(self, store):
        digest = store.put(b"x" * 100)
        faulty = FaultyObjectStore(store, plan_for("truncate"))
        with pytest.raises(IntegrityError):
            faulty.get(digest)
        assert store.get(digest) == b"x" * 100

    def test_eio_raises_oserror(self, store):
        digest = store.put(b"payload")
        faulty = FaultyObjectStore(store, plan_for("eio"))
        with pytest.raises(OSError) as excinfo:
            faulty.get(digest)
        assert excinfo.value.errno == errno.EIO

    def test_missing_object_still_keyerror(self, store):
        faulty = FaultyObjectStore(store, plan_for("bitflip"))
        with pytest.raises(KeyError):
            faulty.get("ab" * 32)

    def test_result_cache_evicts_and_recomputes_through_faults(self, store):
        """The cache's corrupt path engages on an injected bit flip."""
        cache = ResultCache(FaultyObjectStore(store, plan_for("bitflip", rate=0.0)))
        key = "cd" * 32
        cache.put_bytes(key, b"cached result")
        # First read is clean (rate 0); now swap in an always-flip plan.
        assert cache.get_bytes(key) == b"cached result"
        cache.store.plan = plan_for("bitflip")
        assert cache.get_bytes(key) is None
        assert cache.stats.corrupt == 1
        # The eviction removed the entry; a clean retry recomputes.
        cache.store.plan = plan_for("bitflip", rate=0.0)
        assert cache.get_bytes(key) is None
        assert cache.stats.misses == 1


class TestWriteFaults:
    @pytest.mark.parametrize(
        "kind,code", [("enospc", errno.ENOSPC), ("erofs", errno.EROFS)]
    )
    def test_write_errors_carry_errno(self, store, kind, code):
        faulty = FaultyObjectStore(store, plan_for(kind))
        with pytest.raises(OSError) as excinfo:
            faulty.put(b"doomed")
        assert excinfo.value.errno == code

    def test_torn_write_detected_on_clean_reread(self, store):
        faulty = FaultyObjectStore(store, plan_for("torn"))
        digest = faulty.put(b"a torn frame reaches disk incomplete")
        # The write "succeeded" but the trailer rejects it on read.
        with pytest.raises(IntegrityError):
            store.get(digest)

    def test_put_keyed_routes_through_injection(self, store):
        faulty = FaultyObjectStore(store, plan_for("enospc"))
        with pytest.raises(OSError):
            faulty.put_keyed("ef" * 32, b"payload")


class TestDeleteFaults:
    def test_enoent_reports_false(self, store):
        digest = store.put(b"to delete")
        faulty = FaultyObjectStore(store, plan_for("enoent"))
        assert faulty.delete(digest) is False
        assert store.get(digest) == b"to delete"  # loser of the race: no-op

    def test_clean_delete_delegates(self, store):
        digest = store.put(b"to delete")
        faulty = FaultyObjectStore(store, plan_for("enoent", rate=0.0))
        assert faulty.delete(digest) is True


class TestHealthAndDelegation:
    def test_health_counts_injections(self, store):
        health = RunHealth()
        faulty = FaultyObjectStore(store, plan_for("eio"), health)
        digest = store.put(b"payload")
        for _ in range(3):
            with pytest.raises(OSError):
                faulty.get(digest)
        assert health.faults_injected == 3

    def test_unfaulted_attrs_delegate(self, store):
        faulty = FaultyObjectStore(store, FaultPlan(0))
        assert faulty.algorithm == store.algorithm
        digest = faulty.put(b"clean payload")
        assert faulty.get(digest) == b"clean payload"
        assert digest in faulty

    def test_wrap_run_store_wraps_every_namespace(self, tmp_path):
        run_store = RunStore(tmp_path / "store")
        plan = FaultPlan(0)
        wrapped = wrap_run_store(run_store, plan)
        assert wrapped is run_store
        assert isinstance(run_store.objects, FaultyObjectStore)
        for attr in ("results", "shards", "manifests"):
            assert isinstance(getattr(run_store, attr).store, FaultyObjectStore)
            assert getattr(run_store, attr).store.plan is plan


class TestDirectives:
    def test_none_is_noop(self):
        apply_directive(None)  # must not raise

    def test_raise_directive(self):
        with pytest.raises(FaultInjected):
            apply_directive(("raise", None))

    def test_kill_directive_escapes_except_exception(self):
        with pytest.raises(SimulatedCrash):
            apply_directive(("kill", None))
        assert not issubclass(SimulatedCrash, Exception)

    def test_stall_directive_sleeps_then_raises(self):
        import time

        start = time.perf_counter()
        with pytest.raises(FaultInjected, match="stalled"):
            apply_directive(("stall", 0.05))
        assert time.perf_counter() - start >= 0.05

    def test_crash_degrades_to_raise_in_parent_process(self):
        # This test runs in the parent: a real os._exit would kill the
        # whole pytest process, so the directive must degrade.
        assert multiprocessing.parent_process() is None
        with pytest.raises(FaultInjected, match="injected crash"):
            apply_directive(("crash", None))

    def test_unknown_directive_rejected(self):
        with pytest.raises(ValueError):
            apply_directive(("meteor", None))


class TestWorkerPrepare:
    def test_pairs_jobs_with_directives_and_counts(self):
        plan = FaultPlan(0, worker_script={1: "raise"})
        health = RunHealth()
        prepare = worker_prepare(plan, health)
        assert prepare(0, 0, "job-a") == (None, "job-a")
        assert prepare(1, 0, "job-b") == (("raise", None), "job-b")
        assert health.faults_injected == 1

    def test_fallback_rung_gets_clean_payload(self):
        plan = FaultPlan(0, worker_rates={"raise": 1.0})
        prepare = worker_prepare(plan, RunHealth())
        assert prepare(5, None, "job") == (None, "job")
