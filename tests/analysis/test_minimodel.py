"""Tests for the exhaustive miniature theory model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.minimodel import (
    exact_prob_equal,
    exact_prob_offset,
    header_vs_trailer_failure,
    verify_lemma9_exhaustive,
)


def pmf_strategy(size):
    return (
        st.lists(st.floats(0.0, 1.0), min_size=size, max_size=size)
        .filter(lambda w: sum(w) > 1e-6)
        .map(lambda w: np.array(w) / sum(w))
    )


class TestExhaustiveLemma9:
    def test_small_lattice(self):
        # Every PMF on Z_5 with quarter-step probabilities, every offset.
        checked = verify_lemma9_exhaustive(modulus=5, resolution=4)
        assert checked > 200

    def test_finer_lattice(self):
        assert verify_lemma9_exhaustive(modulus=4, resolution=6) > 200

    def test_uniform_distribution_equality_case(self):
        pmf = np.full(7, 1 / 7)
        for offset in range(7):
            assert exact_prob_offset(pmf, offset) == pytest.approx(
                exact_prob_equal(pmf)
            )


class TestTheorem10Toy:
    @given(pmf_strategy(8), pmf_strategy(8))
    @settings(max_examples=100)
    def test_trailer_never_worse(self, data_pmf, delta_pmf):
        header_fail, trailer_fail = header_vs_trailer_failure(data_pmf, delta_pmf)
        assert trailer_fail <= header_fail + 1e-12

    def test_uniform_data_makes_them_equal(self):
        data = np.full(6, 1 / 6)
        delta = np.array([0.0, 0.5, 0.5, 0.0, 0.0, 0.0])
        header_fail, trailer_fail = header_vs_trailer_failure(data, delta)
        assert trailer_fail == pytest.approx(header_fail)

    def test_skewed_data_gives_strict_advantage(self):
        # Non-uniform data + a delta concentrated off zero: the paper's
        # actual situation, with a strict trailer win.
        data = np.array([0.7, 0.1, 0.1, 0.1, 0.0, 0.0])
        delta = np.zeros(6)
        delta[1] = 1.0  # sequence difference is a fixed non-zero amount
        header_fail, trailer_fail = header_vs_trailer_failure(data, delta)
        assert trailer_fail < header_fail

    def test_delta_at_zero_degenerates_to_header(self):
        data = np.array([0.5, 0.25, 0.25, 0.0])
        delta = np.array([1.0, 0.0, 0.0, 0.0])
        header_fail, trailer_fail = header_vs_trailer_failure(data, delta)
        assert trailer_fail == pytest.approx(header_fail)

    def test_mismatched_moduli_rejected(self):
        with pytest.raises(ValueError):
            header_vs_trailer_failure(np.ones(4) / 4, np.ones(5) / 5)
