"""Tests for the cyclic convolution predictor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.convolution import (
    ONES_COMPLEMENT_CLASSES,
    class_pmf,
    cyclic_convolve,
    cyclic_self_convolve,
    match_probability,
    ones_complement_classes,
    predicted_block_distribution,
    predicted_match_probability,
)


def brute_force_convolve(p, q):
    m = len(p)
    out = np.zeros(m)
    for i, pi in enumerate(p):
        for j, qj in enumerate(q):
            out[(i + j) % m] += pi * qj
    return out


class TestClasses:
    def test_both_zeros_merge(self):
        assert ones_complement_classes([0x0000, 0xFFFF]).tolist() == [0, 0]

    def test_other_values_preserved(self):
        assert ones_complement_classes([1, 0xFFFE]).tolist() == [1, 0xFFFE]

    def test_class_pmf_normalised(self):
        pmf = class_pmf([0, 0xFFFF, 5, 5])
        assert pmf.sum() == pytest.approx(1.0)
        assert pmf[0] == pytest.approx(0.5)
        assert pmf[5] == pytest.approx(0.5)


class TestCyclicConvolve:
    @given(st.integers(2, 12), st.data())
    @settings(max_examples=30)
    def test_matches_brute_force(self, m, draw):
        weights_p = draw.draw(
            st.lists(st.floats(0, 1), min_size=m, max_size=m).filter(
                lambda w: sum(w) > 0
            )
        )
        weights_q = draw.draw(
            st.lists(st.floats(0, 1), min_size=m, max_size=m).filter(
                lambda w: sum(w) > 0
            )
        )
        p = np.array(weights_p) / sum(weights_p)
        q = np.array(weights_q) / sum(weights_q)
        assert np.allclose(cyclic_convolve(p, q), brute_force_convolve(p, q),
                           atol=1e-9)

    def test_identity_element(self):
        p = np.zeros(8)
        p[0] = 1.0
        q = np.full(8, 1 / 8)
        assert np.allclose(cyclic_convolve(p, q), q)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            cyclic_convolve(np.ones(4) / 4, np.ones(5) / 5)

    def test_result_is_pmf(self):
        rng = np.random.default_rng(0)
        p = rng.random(100)
        p /= p.sum()
        out = cyclic_self_convolve(p, 5)
        assert out.min() >= 0
        assert out.sum() == pytest.approx(1.0)


class TestSelfConvolve:
    def test_k1_is_identity(self):
        p = np.array([0.5, 0.25, 0.25])
        assert np.allclose(cyclic_self_convolve(p, 1), p)

    def test_k2_matches_pairwise(self):
        p = np.array([0.7, 0.2, 0.1, 0.0])
        assert np.allclose(cyclic_self_convolve(p, 2),
                           brute_force_convolve(p, p), atol=1e-12)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            cyclic_self_convolve(np.ones(4) / 4, 0)

    def test_converges_to_uniform(self):
        # Theorem 4 in action on a small modulus.
        p = np.array([0.9, 0.1, 0.0, 0.0, 0.0])
        out = cyclic_self_convolve(p, 200)
        assert np.allclose(out, 0.2, atol=1e-3)


class TestPredictor:
    def test_prediction_dimensions(self):
        values = [0, 1, 2, 0xFFFF] * 10
        pred = predicted_block_distribution(values, 3)
        assert pred.size == ONES_COMPLEMENT_CLASSES

    def test_predicted_match_decreases_with_k(self):
        # Corollary 3: more cells, more uniform, lower match probability.
        rng = np.random.default_rng(1)
        values = rng.choice([0, 0, 0, 17, 500, 0x8000], size=2000)
        probs = [predicted_match_probability(values, k) for k in (1, 2, 3, 4)]
        assert all(a >= b - 1e-12 for a, b in zip(probs, probs[1:]))
        assert probs[-1] >= 1 / ONES_COMPLEMENT_CLASSES - 1e-12

    def test_k1_prediction_equals_empirical(self):
        values = [5, 5, 9, 0xFFFF, 0]
        pmf = class_pmf(values)
        assert predicted_match_probability(values, 1) == pytest.approx(
            match_probability(pmf)
        )

    def test_uniform_input_predicts_uniform(self):
        rng = np.random.default_rng(2)
        values = rng.integers(0, 65536, size=200_000)
        predicted = predicted_match_probability(values, 4)
        assert predicted == pytest.approx(1 / ONES_COMPLEMENT_CLASSES, rel=0.01)
