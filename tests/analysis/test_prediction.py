"""Tests for the Section 5.4 failure-rate predictor."""

import pytest

from repro.analysis.prediction import SplicePrediction, predict_failure_rates
from repro.core import run_splice_experiment
from repro.corpus import build_filesystem
from repro.protocols.packetizer import PacketizerConfig


class TestPredictionObject:
    def test_total_is_weighted_mean(self):
        prediction = SplicePrediction(
            ks=(1, 2), predicted_by_len=(1.0, 3.0), splices_by_len=(1, 3)
        )
        assert prediction.total_pct == pytest.approx((1.0 + 9.0) / 4)

    def test_as_dict(self):
        prediction = SplicePrediction(
            ks=(1, 2), predicted_by_len=(0.5, 0.25), splices_by_len=(2, 2)
        )
        assert prediction.as_dict() == {1: 0.5, 2: 0.25}

    def test_empty_total(self):
        prediction = SplicePrediction(ks=(), predicted_by_len=(), splices_by_len=())
        assert prediction.total_pct == 0.0


class TestAgainstExperiment:
    @pytest.fixture(scope="class")
    def setup(self):
        fs = build_filesystem("sics-opt", 400_000, 3)
        prediction = predict_failure_rates(fs)
        actual = run_splice_experiment(fs, PacketizerConfig()).counters
        return prediction, actual

    def test_splice_counts_match_enumeration(self, setup):
        prediction, _ = setup
        # Header-led splices of a 7-cell pair total 462 (Section 4.6).
        assert sum(prediction.splices_by_len) == 462
        assert prediction.ks == (1, 2, 3, 4, 5, 6)

    def test_colouring_decay(self, setup):
        # The correction forces k = 6 predictions below the raw local
        # statistic at k = 6 would imply (factor (7-6)/6).
        prediction, _ = setup
        rates = prediction.as_dict()
        assert rates[6] < rates[2] * 2

    def test_right_order_of_magnitude(self, setup):
        # The paper's reconciliation: the distribution-level model
        # lands within 1-2 orders of the measured total, vastly closer
        # than the iid prediction (2^-16 = 0.0015%), and errs on the
        # conservative (over-predicting) side because the local
        # statistic counts overlapping-block self-correlation.
        prediction, actual = setup
        assert actual.miss_rate_transport > 0
        ratio = prediction.total_pct / actual.miss_rate_transport
        assert 0.3 < ratio < 60
        iid_error = actual.miss_rate_transport / (100 / 65536)
        assert iid_error > 10  # the model the paper replaces is way off
