"""Tests for the statistical uniformity verification (Theorems 6/7)."""

import pytest

from repro.analysis.uniformity import (
    UniformityResult,
    checksum_uniformity_test,
    fletcher_component_test,
)


class TestUniformityOverUniformData:
    @pytest.mark.parametrize("algorithm", ["internet", "fletcher255",
                                           "fletcher256"])
    def test_theorems_hold(self, algorithm):
        result = checksum_uniformity_test(algorithm, samples=60_000, seed=2024)
        assert result.consistent_with_uniform, result

    def test_deterministic(self):
        a = checksum_uniformity_test("internet", samples=20_000, seed=5)
        b = checksum_uniformity_test("internet", samples=20_000, seed=5)
        assert a == b

    def test_detects_nonuniform_input(self):
        # Sanity of the test itself: skewed real data must refute
        # uniformity decisively.
        from repro.analysis.distribution import cell_checksum_values
        from repro.corpus.generators import generate
        import numpy as np
        from scipy import stats

        values = cell_checksum_values(generate("gmon", 200_000, 1))
        binned = (values.astype(np.int64) % 65535) * 256 // 65535
        counts = np.bincount(binned, minlength=256)
        _, p_value = stats.chisquare(counts)
        assert p_value < 1e-6

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            checksum_uniformity_test("crc32-aal5")


class TestComponentIndependence:
    @pytest.mark.parametrize("modulus", [255, 256])
    def test_a_b_independent_over_uniform_data(self, modulus):
        result = fletcher_component_test(modulus, samples=60_000, seed=7)
        assert result.consistent_with_uniform, result

    def test_result_fields(self):
        result = fletcher_component_test(255, samples=10_000, seed=1)
        assert isinstance(result, UniformityResult)
        assert result.samples == 10_000
        assert result.bins == 256
        assert 0 <= result.p_value <= 1
