"""Tests for the local-vs-global congruence statistics."""

import numpy as np
import pytest

from repro.analysis.locality import LocalityStats, locality_statistics
from repro.corpus.filesystem import Filesystem, SyntheticFile
from tests.conftest import make_filesystem


def fs_from_bytes(data, name="crafted"):
    fs = Filesystem(name)
    fs.add(SyntheticFile("file", bytes(data), "crafted"))
    return fs


class TestCraftedCases:
    def test_identical_repeats_counted_as_identical(self):
        # One 48-byte pattern repeated: all local congruences are
        # identical-data congruences.
        cell = bytes(range(48))
        fs = fs_from_bytes(cell * 20)
        stats = locality_statistics(fs, ks=(1,))
        entry = stats[1]
        assert entry.local_pairs > 0
        assert entry.local_congruent == entry.local_pairs
        assert entry.local_identical_congruent == entry.local_congruent
        assert entry.local_match == 1.0
        assert entry.local_match_excluding_identical == 0.0

    def test_congruent_but_unequal_detected(self):
        # Alternate a cell with its word-swapped twin: equal sums,
        # different bytes.
        cell = bytearray(range(48))
        swapped = bytearray(cell)
        swapped[0:2], swapped[2:4] = cell[2:4], cell[0:2]
        fs = fs_from_bytes(bytes(cell) + bytes(swapped) + bytes(cell))
        stats = locality_statistics(fs, ks=(1,))
        entry = stats[1]
        assert entry.local_congruent == entry.local_pairs  # all congruent
        assert entry.local_identical_congruent < entry.local_congruent
        assert entry.local_match_excluding_identical > 0

    def test_distinct_cells_no_congruence(self):
        cells = []
        for i in range(10):
            cell = bytearray(48)
            cell[0] = i + 1  # distinct sums
            cells.append(bytes(cell))
        fs = fs_from_bytes(b"".join(cells))
        stats = locality_statistics(fs, ks=(1, 2))
        assert stats[1].local_congruent == 0
        assert stats[2].local_congruent == 0

    def test_window_limits_lag(self):
        # With a 48-byte window only lag-1 pairs are counted.
        fs = fs_from_bytes(bytes(48 * 10))
        stats = locality_statistics(fs, ks=(1,), window=48)
        assert stats[1].local_pairs == 9


class TestGlobalStatistics:
    def test_global_match_of_constant_data(self):
        fs = fs_from_bytes(bytes(48 * 50))
        stats = locality_statistics(fs, ks=(1,))
        assert stats[1].global_match == pytest.approx(1.0)

    def test_global_below_local_on_real_data(self):
        fs = make_filesystem(
            [("c-source", 20_000), ("english", 20_000), ("gmon", 10_000)]
        )
        stats = locality_statistics(fs, ks=(1, 2))
        for k in (1, 2):
            assert stats[k].local_match >= stats[k].global_match

    def test_percentages_tuple(self):
        entry = LocalityStats(k=1, global_match=0.01, local_pairs=100,
                              local_congruent=5, local_identical_congruent=3)
        g, local, excl = entry.as_percentages()
        assert g == pytest.approx(1.0)
        assert local == pytest.approx(5.0)
        assert excl == pytest.approx(2.0)


class TestEdgeCases:
    def test_empty_filesystem(self):
        stats = locality_statistics(Filesystem("empty"), ks=(1, 2))
        assert stats[1].local_pairs == 0
        assert stats[1].global_match == 0.0

    def test_file_shorter_than_block(self):
        fs = fs_from_bytes(bytes(50))
        stats = locality_statistics(fs, ks=(4,))
        assert stats[4].local_pairs == 0

    def test_blocks_never_cross_files(self):
        # Two files each one cell long: no local pairs at all.
        fs = Filesystem("two")
        fs.add(SyntheticFile("a", bytes(48), "x"))
        fs.add(SyntheticFile("b", bytes(48), "x"))
        stats = locality_statistics(fs, ks=(1,))
        assert stats[1].local_pairs == 0
