"""Tests for the entropy measures."""

import math

import numpy as np
import pytest

from repro.analysis.entropy import (
    byte_entropy,
    corpus_statistics,
    distribution_entropy,
    effective_value_bits,
    kl_from_uniform,
)
from tests.conftest import make_filesystem


class TestEntropies:
    def test_uniform_bytes_near_8_bits(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, size=200_000).astype(np.uint8).tobytes()
        assert byte_entropy(data) > 7.99

    def test_constant_bytes_zero_entropy(self):
        assert byte_entropy(bytes(1000)) == 0.0

    def test_two_value_data_one_bit(self):
        data = bytes([0, 255] * 5000)
        assert byte_entropy(data) == pytest.approx(1.0)

    def test_empty_data(self):
        assert byte_entropy(b"") == 0.0

    def test_distribution_entropy_uniform(self):
        assert distribution_entropy(np.ones(16)) == pytest.approx(4.0)

    def test_effective_bits_uniform(self):
        assert effective_value_bits(np.ones(1024)) == pytest.approx(10.0)

    def test_effective_bits_degenerate(self):
        counts = np.zeros(100)
        counts[3] = 50
        assert effective_value_bits(counts) == pytest.approx(0.0)

    def test_renyi_below_shannon(self):
        # H2 <= H1 for any distribution, equality iff uniform.
        counts = np.array([10, 5, 2, 1, 1, 1])
        assert effective_value_bits(counts) <= distribution_entropy(counts) + 1e-12

    def test_kl_zero_for_uniform(self):
        assert kl_from_uniform(np.ones(32)) == pytest.approx(0.0, abs=1e-12)

    def test_kl_positive_for_skew(self):
        assert kl_from_uniform(np.array([10, 1, 1, 1])) > 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            distribution_entropy(np.zeros(4))


class TestCorpusStatistics:
    def test_per_kind_rows(self):
        fs = make_filesystem([("english", 20_000), ("gmon", 10_000),
                              ("english", 5_000)])
        stats = {s.name: s for s in corpus_statistics(fs)}
        assert set(stats) == {"english", "gmon"}
        assert stats["english"].sample_bytes == 25_000
        # The entropy chain: text is high-entropy/low-pmax, gmon the
        # opposite.
        assert stats["english"].byte_entropy_bits > 3.5
        assert stats["gmon"].byte_entropy_bits < 1.0
        assert stats["gmon"].zero_fraction > 0.9
        assert stats["gmon"].checksum_pmax_pct > stats["english"].checksum_pmax_pct
        assert (
            stats["gmon"].checksum_effective_bits
            < stats["english"].checksum_effective_bits
        )
