"""Tests for checksum value distributions."""

import numpy as np
import pytest

from repro.analysis.distribution import (
    ChecksumDistribution,
    block_checksum_values,
    cell_checksum_values,
    distribution_over,
)
from repro.checksums.fletcher import fletcher8
from repro.checksums.internet import ones_complement_sum
from tests.conftest import make_filesystem


class TestCellValues:
    def test_matches_scalar_checksum(self, rng):
        data = rng.integers(0, 256, size=48 * 5).astype(np.uint8).tobytes()
        values = cell_checksum_values(data)
        for i in range(5):
            assert values[i] == ones_complement_sum(data[48 * i : 48 * i + 48])

    def test_partial_tail_cell_dropped(self):
        values = cell_checksum_values(bytes(100))
        assert values.size == 2

    def test_fletcher_values_packed(self, rng):
        data = rng.integers(0, 256, size=96).astype(np.uint8).tobytes()
        for algorithm in ("fletcher255", "fletcher256"):
            values = cell_checksum_values(data, algorithm)
            expected = fletcher8(data[:48], int(algorithm[-3:])).packed()
            assert values[0] == expected

    def test_filesystem_input(self):
        fs = make_filesystem([("english", 480), ("gmon", 480)])
        values = cell_checksum_values(fs)
        assert values.size == 20

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            cell_checksum_values(b"", "md5")


class TestBlockValues:
    def test_block_equals_concatenated_checksum(self, rng):
        data = rng.integers(0, 256, size=48 * 8).astype(np.uint8).tobytes()
        blocks = block_checksum_values(data, k=2)
        assert blocks.size == 4
        for i in range(4):
            assert blocks[i] == ones_complement_sum(data[96 * i : 96 * i + 96])

    def test_blocks_do_not_cross_files(self):
        fs = make_filesystem([("english", 48 * 3), ("gmon", 48 * 3)])
        # Each 3-cell file yields one 2-cell block; no cross-file block.
        assert block_checksum_values(fs, k=2).size == 2

    def test_short_file_yields_nothing(self):
        assert block_checksum_values(bytes(40), k=2).size == 0


class TestDistribution:
    def test_counts_and_observations(self):
        dist = ChecksumDistribution.from_values([5, 5, 7], space=16)
        assert dist.observations == 3
        assert dist.counts[5] == 2
        assert dist.space == 16

    def test_sorted_pmf_descends(self):
        dist = ChecksumDistribution.from_values([1, 1, 1, 2, 2, 3], space=8)
        pmf = dist.sorted_pmf()
        assert pmf[0] == 0.5 and pmf[1] == pytest.approx(1 / 3)
        assert (np.diff(pmf) <= 0).all()

    def test_cdf_reaches_one(self):
        dist = ChecksumDistribution.from_values([0, 1, 2, 3], space=8)
        assert dist.sorted_cdf()[-1] == pytest.approx(1.0)

    def test_match_probability_uniform_case(self):
        dist = ChecksumDistribution.from_values(list(range(8)) * 10, space=8)
        assert dist.match_probability() == pytest.approx(1 / 8)
        assert dist.uniform_match_probability() == 1 / 8

    def test_match_probability_degenerate_case(self):
        dist = ChecksumDistribution.from_values([3] * 50, space=8)
        assert dist.match_probability() == pytest.approx(1.0)
        assert dist.pmax == 1.0

    def test_top_value_share(self):
        dist = ChecksumDistribution.from_values([1, 1, 1, 2], space=8)
        assert dist.top_value_share(1) == pytest.approx(0.75)
        assert dist.top_value_share(2) == pytest.approx(1.0)

    def test_most_common(self):
        dist = ChecksumDistribution.from_values([7, 7, 7, 1, 1, 4], space=8)
        top = dist.most_common(2)
        assert top[0] == (7, pytest.approx(0.5))
        assert top[1] == (1, pytest.approx(1 / 3))

    def test_empty_distribution(self):
        dist = ChecksumDistribution.from_values([], space=16)
        assert dist.pmax == 0.0
        assert dist.top_value_share(5) == 0.0


class TestDistributionOver:
    def test_k1_uses_cells(self):
        fs = make_filesystem([("gmon", 4800)])
        dist = distribution_over(fs, "internet", 1)
        assert dist.observations == 100

    def test_multicell_fletcher_rejected(self):
        with pytest.raises(ValueError):
            distribution_over(b"", "fletcher255", k=2)

    def test_skew_on_real_data(self):
        # The paper's qualitative claim: real data has hot-spots.
        fs = make_filesystem([("gmon", 48_000)])
        dist = distribution_over(fs, "internet", 1)
        assert dist.match_probability() > 100 * dist.uniform_match_probability()


class TestFletcherDistributions:
    def test_filesystem_fletcher_values(self):
        fs = make_filesystem([("gmon", 9600)])
        for algorithm in ("fletcher255", "fletcher256"):
            dist = distribution_over(fs, algorithm, 1)
            assert dist.observations == 200
            # Zero-heavy data concentrates Fletcher values too.
            assert dist.pmax > 0.1

    def test_fletcher255_values_within_component_range(self, rng):
        data = rng.integers(0, 256, size=48 * 50).astype(np.uint8).tobytes()
        values = cell_checksum_values(data, "fletcher255")
        assert ((values & 0xFF) < 255).all()
        assert ((values >> 8) < 255).all()
