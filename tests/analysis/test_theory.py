"""Property tests for the appendix results (Lemmas 1 & 9, Theorem 4)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.convolution import cyclic_convolve
from repro.analysis.theory import (
    coloring_correction,
    effective_checksum_bits,
    modular_clt_pmax,
    prob_equal,
    prob_offset,
)


def pmf_strategy(size):
    return (
        st.lists(st.floats(0.0, 1.0), min_size=size, max_size=size)
        .filter(lambda w: sum(w) > 1e-6)
        .map(lambda w: np.array(w) / sum(w))
    )


class TestLemma9:
    """P[X == Y] >= P[X - Y == c] for any fixed offset c."""

    @given(pmf_strategy(17), st.integers(1, 16))
    @settings(max_examples=80)
    def test_equality_beats_any_offset(self, pmf, offset):
        assert prob_equal(pmf) >= prob_offset(pmf, offset) - 1e-12

    def test_uniform_reaches_equality(self):
        pmf = np.full(16, 1 / 16)
        assert prob_equal(pmf) == pytest.approx(prob_offset(pmf, 5))

    def test_degenerate_distribution(self):
        pmf = np.zeros(8)
        pmf[3] = 1.0
        assert prob_equal(pmf) == 1.0
        assert prob_offset(pmf, 1) == 0.0

    def test_offset_zero_is_equality(self):
        pmf = np.array([0.5, 0.3, 0.2])
        assert prob_offset(pmf, 0) == pytest.approx(prob_equal(pmf))


class TestLemma1AndCorollary3:
    """Convolution never increases PMax nor decreases PMin."""

    @given(pmf_strategy(11), pmf_strategy(11))
    @settings(max_examples=60)
    def test_pmax_shrinks(self, p, q):
        out = cyclic_convolve(p, q)
        assert out.max() <= min(p.max(), q.max()) + 1e-9

    @given(
        st.lists(st.floats(0.01, 1.0), min_size=11, max_size=11).map(
            lambda w: np.array(w) / sum(w)
        )
    )
    @settings(max_examples=40)
    def test_pmin_grows_when_support_full(self, p):
        # Lemma 2 requires full support; entries are bounded away from
        # zero so FFT round-off cannot dominate the comparison.
        out = cyclic_convolve(p, p)
        assert out.min() >= p.min() - 1e-9


class TestTheorem4:
    """The modular central limit theorem."""

    def test_pmax_trajectory_monotone(self):
        pmf = np.array([0.8, 0.1, 0.05, 0.05, 0.0])
        trajectory = modular_clt_pmax(pmf, 30)
        assert all(b <= a + 1e-12 for a, b in zip(trajectory, trajectory[1:]))

    def test_limit_is_uniform(self):
        pmf = np.array([0.6, 0.4, 0, 0, 0, 0, 0])
        trajectory = modular_clt_pmax(pmf, 300)
        assert trajectory[-1] == pytest.approx(1 / 7, abs=1e-3)

    def test_gcd_caveat(self):
        # Support {0, 2} mod 4 never mixes into odd residues, but PMax
        # still falls to 1/2 (uniform over the subgroup).
        pmf = np.array([0.9, 0.0, 0.1, 0.0])
        trajectory = modular_clt_pmax(pmf, 200)
        assert trajectory[-1] == pytest.approx(0.5, abs=1e-3)


class TestColoringCorrection:
    def test_paper_values_m7(self):
        # (m - k) / (m - 1) for m = 7.
        assert coloring_correction(7, 1) == 1.0
        assert coloring_correction(7, 4) == pytest.approx(0.5)
        assert coloring_correction(7, 7) == 0.0

    def test_bounds(self):
        for k in range(1, 8):
            assert 0.0 <= coloring_correction(7, k) <= 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            coloring_correction(7, 0)
        with pytest.raises(ValueError):
            coloring_correction(7, 8)


class TestEffectiveBits:
    def test_uniform_16_bit(self):
        assert effective_checksum_bits(2**-16) == pytest.approx(16.0)

    def test_paper_headline(self):
        # ~0.1% miss rate is about a 10-bit checksum.
        assert effective_checksum_bits(0.001) == pytest.approx(
            math.log2(1000), rel=1e-6
        )

    def test_zero_probability(self):
        assert effective_checksum_bits(0) == float("inf")
