"""Tests for the alternative Internet-checksum implementations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checksums.implementations import (
    ALL_STRATEGIES,
    sum_bytewise,
    sum_deferred_32bit,
    sum_numpy_32bit_pairs,
    sum_numpy_words,
    sum_wordwise,
)
from repro.checksums.internet import ones_complement_sum


@pytest.mark.parametrize("name,strategy", sorted(ALL_STRATEGIES.items()))
class TestAgainstReference:
    def test_rfc1071_example(self, name, strategy):
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert strategy(data) == 0xDDF2

    def test_empty(self, name, strategy):
        assert strategy(b"") == 0

    def test_odd_length(self, name, strategy):
        assert strategy(b"\xab") == 0xAB00

    def test_carry_heavy_input(self, name, strategy):
        # All-ones data maximises carries, the classic bug surface.
        assert strategy(b"\xff" * 101) == ones_complement_sum(b"\xff" * 101)


@given(st.binary(max_size=300))
@settings(max_examples=80)
def test_all_strategies_agree(data):
    results = {name: strategy(data) for name, strategy in ALL_STRATEGIES.items()}
    assert len(set(results.values())) == 1, results
    assert results["numpy-16bit"] == ones_complement_sum(data)


def test_lengths_straddling_chunk_boundaries():
    # 32-bit strategies have special cases at lengths % 4 in {0,1,2,3}.
    for length in range(0, 17):
        data = bytes(range(1, length + 1))
        expected = ones_complement_sum(data)
        assert sum_deferred_32bit(data) == expected, length
        assert sum_numpy_32bit_pairs(data) == expected, length
        assert sum_bytewise(data) == sum_wordwise(data) == expected, length
