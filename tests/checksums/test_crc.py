"""Tests for the generic CRC engine, specs, and combine operators."""

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checksums.crc import (
    CRC10_ATM,
    CRC16_ARC,
    CRC16_CCITT,
    CRC32_AAL5,
    CRCEngine,
    CRCSpec,
    ZeroFeedOperator,
    crc_combine,
    reflect_bits,
)

CHECK_INPUT = b"123456789"

#: Published check values from the CRC catalogue.
KNOWN_CHECKS = [
    (CRC32_AAL5, 0xFC891918),
    (CRC16_ARC, 0xBB3D),
    (CRC16_CCITT, 0x29B1),
    (CRC10_ATM, 0x199),
]

STD_CRC32 = CRCSpec("crc32", 32, 0x04C11DB7, 0xFFFFFFFF, True, True, 0xFFFFFFFF)


class TestReflect:
    def test_reflect_byte(self):
        assert reflect_bits(0b00000001, 8) == 0b10000000
        assert reflect_bits(0b10110000, 8) == 0b00001101

    def test_reflect_involution(self):
        for value in (0, 1, 0xABCD, 0xFFFF):
            assert reflect_bits(reflect_bits(value, 16), 16) == value


class TestSpecValidation:
    def test_rejects_wide_poly(self):
        with pytest.raises(ValueError):
            CRCSpec("bad", 16, 0x1_0000, 0, False, False, 0)

    def test_rejects_unsupported_width(self):
        with pytest.raises(ValueError):
            CRCSpec("bad", 4, 0x3, 0, False, False, 0)


class TestKnownValues:
    @pytest.mark.parametrize("spec,expected", KNOWN_CHECKS)
    def test_catalogue_check_values(self, spec, expected):
        assert CRCEngine(spec).compute(CHECK_INPUT) == expected

    def test_matches_zlib(self):
        engine = CRCEngine(STD_CRC32)
        for data in (b"", b"a", CHECK_INPUT, bytes(100), b"x" * 1000):
            assert engine.compute(data) == zlib.crc32(data)

    def test_verify(self):
        engine = CRCEngine(CRC16_CCITT)
        assert engine.verify(CHECK_INPUT, 0x29B1)
        assert not engine.verify(CHECK_INPUT, 0x29B2)


class TestRegisterAPI:
    def test_process_is_incremental(self):
        engine = CRCEngine(CRC32_AAL5)
        reg = engine.register_init
        reg = engine.process(reg, b"1234")
        reg = engine.process(reg, b"56789")
        assert engine.finalize(reg) == engine.compute(CHECK_INPUT)

    def test_finalize_unfinalize_roundtrip(self):
        for spec in (CRC32_AAL5, CRC16_ARC, STD_CRC32, CRC10_ATM):
            engine = CRCEngine(spec)
            for value in (0, 1, engine.mask, 0x1234 & engine.mask):
                assert engine.unfinalize(engine.finalize(value)) == value

    def test_residue_is_message_independent(self):
        engine = CRCEngine(CRC32_AAL5)
        residue = engine.residue_register()
        for message in (b"", b"abc", bytes(100), b"\xff" * 17):
            reg = engine.process(engine.register_init, message)
            reg = engine.process(reg, engine.crc_bytes(message))
            assert reg == residue

    def test_crc_bytes_width(self):
        assert len(CRCEngine(CRC32_AAL5).crc_bytes(b"x")) == 4
        assert len(CRCEngine(CRC16_ARC).crc_bytes(b"x")) == 2
        assert len(CRCEngine(CRC10_ATM).crc_bytes(b"x")) == 2


class TestVectorized:
    @pytest.mark.parametrize("spec", [CRC32_AAL5, CRC16_ARC, CRC16_CCITT, CRC10_ATM])
    def test_process_cells_matches_scalar(self, spec, rng):
        engine = CRCEngine(spec)
        cells = rng.integers(0, 256, size=(10, 48)).astype(np.uint8)
        regs = engine.process_cells(cells)
        for i in range(10):
            assert int(regs[i]) == engine.process(0, cells[i].tobytes())

    def test_process_cells_with_init(self, rng):
        engine = CRCEngine(CRC32_AAL5)
        cells = rng.integers(0, 256, size=(4, 16)).astype(np.uint8)
        regs = engine.process_cells(cells, init=engine.register_init)
        for i in range(4):
            assert int(regs[i]) == engine.process(
                engine.register_init, cells[i].tobytes()
            )


class TestZeroFeedOperator:
    @pytest.mark.parametrize("spec", [CRC32_AAL5, CRC16_ARC, STD_CRC32, CRC10_ATM])
    @pytest.mark.parametrize("nbytes", [0, 1, 7, 48])
    def test_matches_explicit_zero_feed(self, spec, nbytes):
        engine = CRCEngine(spec)
        op = ZeroFeedOperator(engine, nbytes)
        for reg in (0, 1, 0x1234 & engine.mask, engine.mask):
            assert op.apply(reg) == engine.process(reg, bytes(nbytes))

    def test_apply_vec_matches_apply(self, rng):
        engine = CRCEngine(CRC32_AAL5)
        op = engine.zero_feed(48)
        regs = rng.integers(0, 2**32, size=100, dtype=np.uint64).astype(np.uint32)
        vec = op.apply_vec(regs)
        for reg, out in zip(regs.tolist(), vec.tolist()):
            assert op.apply(reg) == out

    def test_linearity(self):
        engine = CRCEngine(CRC32_AAL5)
        op = engine.zero_feed(13)
        a, b = 0x12345678, 0x0F0F0F0F
        assert op.apply(a ^ b) == op.apply(a) ^ op.apply(b)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            ZeroFeedOperator(CRCEngine(CRC16_ARC), -1)

    def test_cached(self):
        engine = CRCEngine(CRC16_ARC)
        assert engine.zero_feed(48) is engine.zero_feed(48)


class TestCombine:
    @given(st.binary(max_size=64), st.binary(max_size=64))
    @settings(max_examples=40)
    def test_combine_matches_zlib(self, a, b):
        engine = CRCEngine(STD_CRC32)
        assert crc_combine(
            engine, engine.compute(a), engine.compute(b), len(b)
        ) == zlib.crc32(a + b)

    @pytest.mark.parametrize("spec", [CRC32_AAL5, CRC16_CCITT, CRC10_ATM])
    def test_combine_all_specs(self, spec, rng):
        engine = CRCEngine(spec)
        for _ in range(10):
            a = rng.integers(0, 256, size=int(rng.integers(0, 60))).astype(np.uint8).tobytes()
            b = rng.integers(0, 256, size=int(rng.integers(0, 60))).astype(np.uint8).tobytes()
            assert crc_combine(
                engine, engine.compute(a), engine.compute(b), len(b)
            ) == engine.compute(a + b)


class TestErrorDetectionProperties:
    """The classical CRC guarantees the paper cites in Section 2."""

    def test_single_bit_errors_detected(self):
        engine = CRCEngine(CRC32_AAL5)
        data = bytearray(b"some reference frame data!")
        reference = engine.compute(data)
        for byte in range(len(data)):
            for bit in range(8):
                corrupted = bytearray(data)
                corrupted[byte] ^= 1 << bit
                assert engine.compute(corrupted) != reference

    def test_burst_errors_up_to_width_detected(self, rng):
        # CRC-32 detects all bursts spanning fewer than 32 bits.
        engine = CRCEngine(CRC32_AAL5)
        data = bytes(64)
        reference = engine.compute(data)
        for _ in range(200):
            start = int(rng.integers(0, 64 * 8 - 31))
            length = int(rng.integers(2, 32))
            pattern = int(rng.integers(1, 2 ** (length - 2) + 1)) | (
                1 | (1 << (length - 1))
            )
            corrupted = int.from_bytes(data, "big") ^ (
                pattern << (64 * 8 - start - length)
            )
            assert engine.compute(corrupted.to_bytes(64, "big")) != reference

    def test_odd_bit_errors_detected_crc32(self, rng):
        # The CRC-32 polynomial does not contain (x+1), but three
        # random flips are still essentially always caught; use the
        # exhaustive 3-bit check on a short message instead.
        engine = CRCEngine(CRC32_AAL5)
        data = bytes(4)
        reference = engine.compute(data)
        for _ in range(200):
            positions = rng.choice(32, size=3, replace=False)
            value = 0
            for position in positions:
                value ^= 1 << int(position)
            assert engine.compute(value.to_bytes(4, "big")) != reference

    def test_two_bit_errors_within_window_detected(self, rng):
        engine = CRCEngine(CRC16_CCITT)
        data = bytes(128)
        reference = engine.compute(data)
        for _ in range(200):
            i = int(rng.integers(0, 128 * 8))
            j = int(rng.integers(0, 128 * 8))
            if i == j:
                continue
            value = (1 << i) | (1 << j)
            assert engine.compute(value.to_bytes(128, "big")) != reference


def test_crc32c_check_value():
    # The Castagnoli polynomial's catalogue check value.
    from repro.checksums.crc import CRC32C

    assert CRCEngine(CRC32C).compute(CHECK_INPUT) == 0xE3069283


def test_crc32c_registered():
    from repro.checksums.registry import get_algorithm

    engine = get_algorithm("crc32c")
    assert engine.spec.poly == 0x1EDC6F41
