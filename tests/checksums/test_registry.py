"""Tests for the algorithm registry."""

import pytest

from repro.checksums.crc import CRCEngine
from repro.checksums.fletcher import Fletcher8
from repro.checksums.internet import InternetChecksum
from repro.checksums.registry import available_algorithms, get_algorithm


def test_all_names_resolve():
    for name in available_algorithms():
        algorithm = get_algorithm(name)
        assert hasattr(algorithm, "compute")
        assert algorithm.bits in (8, 10, 16, 32)


def test_tcp_alias():
    assert isinstance(get_algorithm("tcp"), InternetChecksum)
    assert isinstance(get_algorithm("internet"), InternetChecksum)


def test_fletcher_moduli():
    assert get_algorithm("fletcher255").modulus == 255
    assert get_algorithm("fletcher256").modulus == 256
    assert isinstance(get_algorithm("fletcher255"), Fletcher8)


def test_crc_engines():
    engine = get_algorithm("crc32-aal5")
    assert isinstance(engine, CRCEngine)
    assert engine.spec.width == 32


def test_instances_cached():
    assert get_algorithm("internet") is get_algorithm("internet")


def test_case_insensitive():
    assert get_algorithm("INTERNET") is get_algorithm("internet")


def test_unknown_name_lists_choices():
    with pytest.raises(KeyError, match="fletcher255"):
        get_algorithm("md5")
