"""Tests for the Internet checksum (RFC 1071) implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checksums.internet import (
    InternetChecksum,
    fold_carries,
    internet_checksum,
    internet_checksum_field,
    ones_complement_add,
    ones_complement_sum,
    update_checksum_field,
    word_sums,
)


class TestFoldCarries:
    def test_small_value_unchanged(self):
        assert fold_carries(0x1234) == 0x1234

    def test_single_carry(self):
        assert fold_carries(0x1_0000) == 1

    def test_all_ones_preserved(self):
        # 0xFFFF is a representation of zero but folding does not
        # normalise it away.
        assert fold_carries(0xFFFF) == 0xFFFF

    def test_double_carry(self):
        # A value whose first fold produces another carry.
        assert fold_carries(0x3_FFFF) == fold_carries(0xFFFF + 3)

    def test_large_sum(self):
        # Folding is congruent to reduction mod 0xFFFF (with the
        # two-zeros caveat).
        value = 123456789
        assert fold_carries(value) % 0xFFFF == value % 0xFFFF

    def test_array_input(self):
        arr = np.array([0x1_0000, 0x1234, 0xFFFF], dtype=np.uint64)
        out = fold_carries(arr)
        assert out.tolist() == [1, 0x1234, 0xFFFF]


class TestScalarChecksum:
    def test_rfc1071_example(self):
        # The worked example from RFC 1071 section 3.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0xDDF2
        assert internet_checksum_field(data) == 0x220D

    def test_empty_data(self):
        assert internet_checksum(b"") == 0

    def test_odd_length_pads_with_zero(self):
        assert internet_checksum(b"\x12") == internet_checksum(b"\x12\x00")

    def test_zero_data_sums_to_zero(self):
        assert internet_checksum(bytes(100)) == 0

    def test_order_independence(self):
        # The weakness the paper studies: word order does not matter.
        a = internet_checksum(b"\x12\x34\x56\x78")
        b = internet_checksum(b"\x56\x78\x12\x34")
        assert a == b

    def test_verify_roundtrip(self):
        data = bytearray(b"the quick brown fox ")
        data += internet_checksum_field(data).to_bytes(2, "big")
        assert InternetChecksum().verify(data)

    def test_verify_detects_corruption(self):
        data = bytearray(b"the quick brown fox ")
        data += internet_checksum_field(data).to_bytes(2, "big")
        data[3] ^= 0x40
        assert not InternetChecksum().verify(data)

    def test_ones_complement_add(self):
        assert ones_complement_add(0xFFFF, 1) == 1
        assert ones_complement_add(0x8000, 0x8000) == 1  # end-around carry


class TestIncrementalUpdate:
    def test_update_matches_recompute(self):
        data = bytearray(b"\x10\x20\x30\x40\x50\x60")
        field = internet_checksum_field(data)
        new = bytearray(data)
        new[2:4] = b"\xAB\xCD"
        updated = update_checksum_field(field, 0x3040, 0xABCD)
        assert fold_carries(word_sums(new) + updated) == 0xFFFF

    @given(st.binary(min_size=4, max_size=64), st.integers(0, 0xFFFF))
    @settings(max_examples=50)
    def test_update_property(self, data, new_word):
        if len(data) % 2:
            data += b"\x00"
        field = internet_checksum_field(data)
        old_word = int.from_bytes(data[0:2], "big")
        new_data = new_word.to_bytes(2, "big") + data[2:]
        updated = update_checksum_field(field, old_word, new_word)
        assert fold_carries(word_sums(new_data) + updated) == 0xFFFF


class TestDecomposability:
    """The partial-sum algebra the splice engine relies on."""

    @given(st.binary(max_size=96), st.binary(max_size=96))
    @settings(max_examples=50)
    def test_concatenation(self, a, b):
        if len(a) % 2:
            a += b"\x00"
        whole = ones_complement_sum(a + b)
        parts = fold_carries(word_sums(a) + word_sums(b))
        assert whole == parts

    def test_byte_swap_property(self):
        # RFC 1071's byte-order independence: byte-swapping the data
        # byte-swaps the sum.
        data = bytes(range(48))
        swapped = b"".join(
            data[i + 1 : i + 2] + data[i : i + 1] for i in range(0, 48, 2)
        )
        original = ones_complement_sum(data)
        assert ones_complement_sum(swapped) == (
            ((original & 0xFF) << 8) | (original >> 8)
        )


class TestVectorized:
    def test_cell_sums_match_scalar(self, rng):
        cells = rng.integers(0, 256, size=(20, 48)).astype(np.uint8)
        sums = InternetChecksum.cell_sums(cells)
        for i in range(20):
            assert InternetChecksum.fold(int(sums[i])) == ones_complement_sum(
                cells[i].tobytes()
            )

    def test_cell_sums_multidimensional(self, rng):
        cells = rng.integers(0, 256, size=(4, 5, 48)).astype(np.uint8)
        sums = InternetChecksum.cell_sums(cells)
        assert sums.shape == (4, 5)

    def test_cell_sums_rejects_odd_length(self):
        with pytest.raises(ValueError):
            InternetChecksum.cell_sums(np.zeros((3, 47), dtype=np.uint8))

    def test_fold_scalar_and_array_agree(self):
        values = np.array([0x12345, 0xFFFF0, 7], dtype=np.uint64)
        folded = InternetChecksum.fold(values)
        for raw, out in zip(values.tolist(), folded.tolist()):
            assert fold_carries(raw) == out
