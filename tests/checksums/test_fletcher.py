"""Tests for Fletcher's checksum (mod 255 and mod 256)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checksums.fletcher import (
    Fletcher8,
    FletcherSums,
    fletcher8,
    fletcher8_cells,
    fletcher_check_bytes,
    fletcher_combine,
)


class TestBasicSums:
    def test_manual_small_case(self):
        # d = [1, 2, 3]: A = 6, B = 3*1 + 2*2 + 1*3 = 10.
        sums = fletcher8(bytes([1, 2, 3]), 256)
        assert (sums.a, sums.b) == (6, 10)

    def test_mod255_reduction(self):
        sums = fletcher8(bytes([250, 250]), 255)
        assert sums.a == (250 + 250) % 255
        assert sums.b == (2 * 250 + 250) % 255

    def test_empty_data(self):
        assert fletcher8(b"", 255) == FletcherSums(0, 0)

    def test_packed_layout(self):
        assert FletcherSums(a=0x12, b=0x34).packed() == 0x3412

    def test_position_sensitivity(self):
        # Unlike the Internet checksum, reordering changes the sum.
        a = fletcher8(b"\x01\x02", 256)
        b = fletcher8(b"\x02\x01", 256)
        assert a.a == b.a and a.b != b.b

    def test_mod255_two_zeros_weakness(self):
        # 0x00 and 0xFF are congruent mod 255 -- the PBM pathology.
        zeros = fletcher8(bytes(10), 255)
        ones = fletcher8(b"\xff" * 10, 255)
        assert (zeros.a, zeros.b) == (ones.a, ones.b) == (0, 0)

    def test_mod256_distinguishes_0_and_255(self):
        zeros = fletcher8(bytes(10), 256)
        ones = fletcher8(b"\xff" * 10, 256)
        assert (zeros.a, zeros.b) != (ones.a, ones.b)


class TestCombine:
    @given(st.binary(max_size=80), st.binary(max_size=80),
           st.sampled_from([255, 256]))
    @settings(max_examples=60)
    def test_combine_law(self, a, b, modulus):
        whole = fletcher8(a + b, modulus)
        combined = fletcher_combine(
            fletcher8(a, modulus), fletcher8(b, modulus), len(b), modulus
        )
        assert (whole.a, whole.b) == (combined.a, combined.b)

    def test_positional_shift(self):
        # A chunk's B contribution grows with its distance from the end.
        chunk = fletcher8(b"abc", 256)
        near = fletcher_combine(chunk, fletcher8(b"", 256), 0, 256)
        far = fletcher_combine(chunk, fletcher8(bytes(5), 256), 5, 256)
        assert far.b == (near.b + 5 * chunk.a) % 256


class TestCheckBytes:
    @given(st.binary(min_size=4, max_size=120), st.data(),
           st.sampled_from([255, 256]))
    @settings(max_examples=60)
    def test_sum_to_zero_any_offset(self, data, draw, modulus):
        offset = draw.draw(st.integers(0, len(data) - 2))
        buf = bytearray(data)
        buf[offset : offset + 2] = b"\x00\x00"
        algorithm = Fletcher8(modulus)
        x, y = algorithm.check_bytes(buf, offset)
        buf[offset], buf[offset + 1] = x, y
        assert algorithm.verify(buf)

    def test_rejects_nonzero_field(self):
        with pytest.raises(ValueError):
            Fletcher8(255).check_bytes(b"\x01\x02\x03\x04", 1)

    def test_check_bytes_in_range(self):
        sums = fletcher8(b"hello world\x00\x00", 255)
        x, y = fletcher_check_bytes(sums, 0, 255)
        assert 0 <= x < 255 and 0 <= y < 255


class TestAlgorithmObject:
    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            Fletcher8(254)

    def test_names(self):
        assert Fletcher8(255).name == "fletcher255"
        assert Fletcher8(256).name == "fletcher256"

    def test_compute_packs_sums(self):
        data = b"some packet data"
        algorithm = Fletcher8(256)
        sums = algorithm.sums(data)
        assert algorithm.compute(data) == sums.packed()

    def test_verify_detects_byte_change(self):
        buf = bytearray(b"payload\x00\x00tail")
        algorithm = Fletcher8(256)
        x, y = algorithm.check_bytes(buf, 7)
        buf[7], buf[8] = x, y
        assert algorithm.verify(buf)
        buf[0] ^= 1
        assert not algorithm.verify(buf)

    def test_verify_misses_0_255_swap_mod255(self):
        # The documented Fletcher-255 weakness, end to end.
        buf = bytearray(bytes(6) + b"\x00\x00")
        algorithm = Fletcher8(255)
        x, y = algorithm.check_bytes(buf, 6)
        buf[6], buf[7] = x, y
        assert algorithm.verify(buf)
        corrupted = bytearray(buf)
        corrupted[2] = 0xFF  # 0x00 -> 0xFF goes unseen mod 255
        assert algorithm.verify(corrupted)
        assert not Fletcher8(256).verify(corrupted)


class TestVectorized:
    def test_cells_match_scalar(self, rng):
        cells = rng.integers(0, 256, size=(16, 48)).astype(np.uint8)
        for modulus in (255, 256):
            a, b = fletcher8_cells(cells, modulus)
            for i in range(16):
                expected = fletcher8(cells[i].tobytes(), modulus)
                assert (a[i], b[i]) == (expected.a, expected.b)

    def test_cells_batch_shape(self, rng):
        cells = rng.integers(0, 256, size=(3, 7, 48)).astype(np.uint8)
        a, b = fletcher8_cells(cells, 255)
        assert a.shape == b.shape == (3, 7)
