"""Tests for the streaming (incremental) checksum interfaces."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checksums.crc import CRC32_AAL5, CRCEngine
from repro.checksums.fletcher import fletcher8
from repro.checksums.internet import internet_checksum
from repro.checksums.streaming import (
    StreamingCRC,
    StreamingFletcher,
    StreamingInternetChecksum,
    open_stream,
)


def chunked(data, cuts):
    """Split ``data`` at the sorted offsets in ``cuts``."""
    edges = [0] + sorted(set(min(c, len(data)) for c in cuts)) + [len(data)]
    return [data[a:b] for a, b in zip(edges, edges[1:])]


class TestStreamingInternet:
    @given(st.binary(max_size=200), st.lists(st.integers(0, 200), max_size=5))
    @settings(max_examples=60)
    def test_any_chunking_matches_oneshot(self, data, cuts):
        stream = StreamingInternetChecksum()
        for chunk in chunked(data, cuts):
            stream.update(chunk)
        assert stream.value() == internet_checksum(data)

    def test_single_odd_bytes(self):
        stream = StreamingInternetChecksum()
        for byte in b"abcde":
            stream.update(bytes([byte]))
        assert stream.value() == internet_checksum(b"abcde")

    def test_field_is_complement(self):
        stream = StreamingInternetChecksum()
        stream.update(b"data!!")
        assert stream.field() == stream.value() ^ 0xFFFF

    def test_copy_is_independent(self):
        stream = StreamingInternetChecksum()
        stream.update(b"abc")
        clone = stream.copy()
        clone.update(b"def")
        assert stream.value() == internet_checksum(b"abc")
        assert clone.value() == internet_checksum(b"abcdef")


class TestStreamingFletcher:
    @given(st.binary(max_size=150), st.lists(st.integers(0, 150), max_size=4),
           st.sampled_from([255, 256]))
    @settings(max_examples=60)
    def test_any_chunking_matches_oneshot(self, data, cuts, modulus):
        stream = StreamingFletcher(modulus)
        for chunk in chunked(data, cuts):
            stream.update(chunk)
        expected = fletcher8(data, modulus)
        assert stream.sums() == expected
        assert stream.value() == expected.packed()

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            StreamingFletcher(100)

    def test_copy(self):
        stream = StreamingFletcher(255)
        stream.update(b"xy")
        clone = stream.copy()
        clone.update(b"z")
        assert stream.sums() == fletcher8(b"xy", 255)
        assert clone.sums() == fletcher8(b"xyz", 255)


class TestStreamingCRC:
    def test_matches_oneshot(self):
        engine = CRCEngine(CRC32_AAL5)
        stream = StreamingCRC(engine)
        stream.update(b"1234")
        stream.update(b"")
        stream.update(b"56789")
        assert stream.value() == engine.compute(b"123456789") == 0xFC891918

    def test_accepts_algorithm_name(self):
        stream = StreamingCRC("crc16-ccitt")
        stream.update(b"123456789")
        assert stream.value() == 0x29B1

    def test_digest_bytes(self):
        stream = StreamingCRC("crc32-aal5")
        stream.update(b"123456789")
        assert stream.digest() == (0xFC891918).to_bytes(4, "big")

    def test_copy(self):
        stream = StreamingCRC("crc32-aal5")
        stream.update(b"12345")
        clone = stream.copy()
        clone.update(b"6789")
        assert clone.value() == 0xFC891918
        stream.update(b"6789")
        assert stream.value() == clone.value()


class TestOpenStream:
    def test_dispatch(self):
        assert isinstance(open_stream("internet"), StreamingInternetChecksum)
        assert isinstance(open_stream("fletcher255"), StreamingFletcher)
        assert open_stream("fletcher256").modulus == 256
        assert isinstance(open_stream("crc10-atm"), StreamingCRC)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            open_stream("sha256")
