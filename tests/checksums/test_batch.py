"""Batch-tier conformance: the vectorized path is bit-identical.

The batch capability (``compute_many`` / ``prefix_state`` /
``combine`` / ``state_value``) is an *optional superset* of the scalar
:class:`~repro.checksums.registry.ChecksumAlgorithm` protocol, so its
contract is stated entirely in terms of the scalar path:

* ``compute_many(blocks)[i] == compute(blocks[i])`` for every row;
* ``state_value(combine(prefix_state(a), prefix_state(b), len(b)))
  == compute(a + b)`` for every split point, including odd-length and
  empty parts.

Every registered algorithm currently advertises the tier; these tests
pin both the advertisement and the bit-identity.
"""

import numpy as np
import pytest

from repro.checksums.batch import (
    BatchChecksumAlgorithm,
    EngineKind,
    block_matrix,
    supports_batch,
)
from repro.checksums.registry import available_algorithms, get_algorithm
from repro.checksums.registry import supports_batch as registry_supports_batch


def _pattern(length, seed=0):
    """Deterministic non-trivial bytes (no RNG: conformance data)."""
    return bytes((i * 31 + seed * 97 + 7) % 256 for i in range(length))


#: Block lengths covering the parity and window cases the kernels
#: special-case: empty-ish, odd, the ATM cell, and a multi-cell span.
BLOCK_LENGTHS = [1, 33, 48, 1008]

SPLIT_BUFFER = _pattern(301, seed=5)
SPLIT_POINTS = [0, 1, 2, 47, 48, 150, 300, 301]


@pytest.fixture(params=available_algorithms())
def algorithm(request):
    return get_algorithm(request.param)


class TestAdvertisement:
    def test_every_registered_algorithm_has_the_tier(self, algorithm):
        assert supports_batch(algorithm)
        assert isinstance(algorithm, BatchChecksumAlgorithm)

    def test_registry_resolves_names(self):
        for name in available_algorithms():
            assert registry_supports_batch(name)

    def test_structural_check_rejects_scalar_only_objects(self):
        class ScalarOnly:
            name = "scalar-only"
            width = 16

            def compute(self, data):
                return 0

            def field(self, data):
                return b"\x00\x00"

        assert not supports_batch(ScalarOnly())


class TestComputeMany:
    @pytest.mark.parametrize("length", BLOCK_LENGTHS)
    def test_matches_scalar_compute(self, algorithm, length):
        blocks = [_pattern(length, seed) for seed in range(9)]
        values = algorithm.compute_many(block_matrix(blocks))
        assert values.shape == (len(blocks),)
        for i, block in enumerate(blocks):
            assert int(values[i]) == algorithm.compute(block), (
                algorithm.name, length, i,
            )

    def test_accepts_uint8_matrix_without_copy(self, algorithm):
        matrix = np.frombuffer(
            _pattern(4 * 48), dtype=np.uint8
        ).reshape(4, 48)
        values = algorithm.compute_many(matrix)
        for i in range(4):
            assert int(values[i]) == algorithm.compute(matrix[i].tobytes())


def _word_aligned_only(algorithm):
    """Fletcher-16 composes only word-aligned (even-length) prefixes."""
    return algorithm.name.startswith("fletcher16")


class TestPrefixCombine:
    @pytest.mark.parametrize("split", SPLIT_POINTS)
    def test_split_recombines_to_whole_buffer(self, algorithm, split):
        head, tail = SPLIT_BUFFER[:split], SPLIT_BUFFER[split:]
        if split % 2 and _word_aligned_only(algorithm):
            # The documented constraint: an odd prefix cannot compose.
            with pytest.raises(ValueError):
                algorithm.combine(
                    algorithm.prefix_state(head),
                    algorithm.prefix_state(tail),
                    len(tail),
                )
            return
        state = algorithm.combine(
            algorithm.prefix_state(head),
            algorithm.prefix_state(tail),
            len(tail),
        )
        assert algorithm.state_value(state) == algorithm.compute(
            SPLIT_BUFFER
        ), (algorithm.name, split)

    def test_three_way_combine_is_order_consistent(self, algorithm):
        a, b, c = SPLIT_BUFFER[:100], SPLIT_BUFFER[100:200], SPLIT_BUFFER[200:]
        left = algorithm.combine(
            algorithm.combine(
                algorithm.prefix_state(a), algorithm.prefix_state(b), len(b)
            ),
            algorithm.prefix_state(c),
            len(c),
        )
        right = algorithm.combine(
            algorithm.prefix_state(a),
            algorithm.combine(
                algorithm.prefix_state(b), algorithm.prefix_state(c), len(c)
            ),
            len(b) + len(c),
        )
        whole = algorithm.compute(SPLIT_BUFFER)
        assert algorithm.state_value(left) == whole, algorithm.name
        assert algorithm.state_value(right) == whole, algorithm.name


class TestBlockMatrix:
    def test_ragged_input_raises(self):
        with pytest.raises(ValueError):
            block_matrix([b"ab", b"abc"])

    def test_non_uint8_array_raises(self):
        with pytest.raises(ValueError):
            block_matrix(np.zeros((2, 4), dtype=np.int64))

    def test_empty_iterable_yields_empty_matrix(self):
        assert block_matrix([]).shape == (0, 0)

    def test_bytes_rows_stack(self):
        matrix = block_matrix([b"\x01\x02", b"\x03\x04"])
        assert matrix.dtype == np.uint8
        assert matrix.tolist() == [[1, 2], [3, 4]]


class TestEngineKind:
    def test_values_are_the_cli_choices(self):
        assert {k.value for k in EngineKind} == {"scalar", "batch", "auto"}

    def test_str_is_argparse_friendly(self):
        assert str(EngineKind.BATCH) == "batch"

    def test_constructible_from_flag_value(self):
        assert EngineKind("scalar") is EngineKind.SCALAR
