"""Tests for Fletcher-16, Adler-32 and XOR-16."""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checksums.extra import (
    Adler32,
    Fletcher16,
    Xor16,
    adler32,
    fletcher16,
    xor16,
)


class TestAdler32:
    @given(st.binary(max_size=500))
    @settings(max_examples=80)
    def test_matches_zlib(self, data):
        assert adler32(data) == zlib.adler32(data)

    def test_empty_is_one(self):
        assert adler32(b"") == 1

    def test_object_api(self):
        algorithm = Adler32()
        assert algorithm.compute(b"abc") == zlib.adler32(b"abc")
        assert algorithm.verify(b"abc", zlib.adler32(b"abc"))
        assert not algorithm.verify(b"abc", 0)
        assert algorithm.bits == 32


class TestFletcher16:
    def test_manual_case(self):
        # words [0x0102, 0x0304]: A = 0x0406, B = 2*0x0102 + 0x0304.
        sums = fletcher16(bytes([1, 2, 3, 4]))
        assert sums.a == 0x0406
        assert sums.b == (2 * 0x0102 + 0x0304) % 65535

    def test_odd_length_pads(self):
        assert fletcher16(b"\x05") == fletcher16(b"\x05\x00")

    def test_position_sensitivity(self):
        a = fletcher16(b"\x00\x01\x00\x02")
        b = fletcher16(b"\x00\x02\x00\x01")
        assert a.a == b.a and a.b != b.b

    def test_two_moduli_differ(self):
        data = b"\xff\xff" * 5
        assert Fletcher16(65535).compute(data) != Fletcher16(65536).compute(data)

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            Fletcher16(1000)

    def test_packed_layout(self):
        value = Fletcher16().compute(b"\x00\x07")
        assert value == (0x0007 << 16) | 0x0007  # B == A for one word

    def test_empty(self):
        assert Fletcher16().compute(b"") == 0


class TestXor16:
    def test_parity_cancels_duplicates(self):
        assert xor16(b"\x12\x34\x12\x34") == 0

    def test_single_word(self):
        assert xor16(b"\xab\xcd") == 0xABCD

    def test_odd_length(self):
        assert xor16(b"\xab") == 0xAB00

    def test_empty(self):
        assert xor16(b"") == 0

    def test_weaker_than_sum(self):
        # XOR cannot count: doubling a word is invisible, while the
        # Internet checksum notices.
        from repro.checksums.internet import internet_checksum

        base = b"\x11\x22\x33\x44"
        doubled = b"\x11\x22\x11\x22\x33\x44\x11\x22"  # extra pair cancels
        assert xor16(base + b"\x55\x66\x55\x66") == xor16(base)
        assert internet_checksum(base + b"\x55\x66\x55\x66") != internet_checksum(base)

    def test_object_api(self):
        algorithm = Xor16()
        assert algorithm.verify(b"\xab\xcd", 0xABCD)
        assert algorithm.bits == 16


class TestRegistryIntegration:
    def test_new_algorithms_registered(self):
        from repro.checksums.registry import get_algorithm

        assert get_algorithm("adler32").compute(b"x") == zlib.adler32(b"x")
        assert get_algorithm("xor16").compute(b"\x01\x02") == 0x0102
        assert get_algorithm("fletcher16-65535").modulus == 65535
        assert get_algorithm("fletcher16-65536").modulus == 65536
