"""Every registered algorithm conforms to the ChecksumAlgorithm protocol.

The protocol's load-bearing clause is the *framing identity*: for any
algorithm ``a`` and message ``m``, ``a.verify(m + a.field(m))`` is
true, and flipping any message bit makes it false.  The artifact
store's integrity trailers and the splice engine's verdict logic both
assume exactly this.
"""

import warnings

import pytest

from repro.checksums import CRCEngine, ChecksumAlgorithm
from repro.checksums.registry import available_algorithms, get_algorithm

MESSAGES = [
    b"",
    b"x",                        # odd length
    b"ab",
    b"123456789",
    b"The quick brown fox jumps over the lazy dog" * 5,
    bytes(100),                  # all zeros
    bytes(101),
    bytes(range(256)),
]


@pytest.fixture(params=available_algorithms())
def algorithm(request):
    return get_algorithm(request.param)


class TestConformance:
    def test_structural_conformance(self, algorithm):
        assert isinstance(algorithm, ChecksumAlgorithm)

    def test_width_and_name(self, algorithm):
        assert isinstance(algorithm.width, int) and algorithm.width > 0
        assert isinstance(algorithm.name, str) and algorithm.name
        # legacy alias kept for pre-protocol callers
        assert algorithm.bits == algorithm.width

    def test_compute_returns_bounded_int(self, algorithm):
        for message in MESSAGES:
            value = algorithm.compute(message)
            assert isinstance(value, int)
            assert 0 <= value < (1 << algorithm.width)

    def test_field_width(self, algorithm):
        for message in MESSAGES:
            field = algorithm.field(message)
            assert isinstance(field, bytes)
            assert len(field) == (algorithm.width + 7) // 8

    def test_framing_identity(self, algorithm):
        for message in MESSAGES:
            framed = message + algorithm.field(message)
            assert algorithm.verify(framed), (algorithm.name, len(message))

    def test_corruption_detected(self, algorithm):
        for message in MESSAGES:
            if not message or not any(message):
                continue  # all-zero data: nothing to flip meaningfully
            framed = bytearray(message + algorithm.field(message))
            framed[0] ^= 0x40
            assert not algorithm.verify(bytes(framed)), algorithm.name

    def test_verify_accepts_bytearray(self, algorithm):
        message = b"protocol-tolerates-bytes-like"
        framed = bytearray(message + algorithm.field(message))
        assert algorithm.verify(framed)


class TestCRCResidueSemantics:
    def test_verify_is_streaming_residue_check(self):
        """verify() needs no frame boundary: it streams message+CRC."""
        engine = get_algorithm("crc32-aal5")
        message = b"AAL5 CPCS payload"
        framed = message + engine.field(message)
        reg = engine.process(engine.register_init, framed)
        assert engine.verify(framed)
        assert reg == engine.residue_register("big")

    def test_crc10_pad_bits_enter_the_division(self):
        """The 10-bit CRC padded to 2 bytes still frames correctly."""
        engine = get_algorithm("crc10-atm")
        for message in MESSAGES:
            assert engine.verify(message + engine.field(message))

    def test_reflected_crc_ships_little_endian(self):
        engine = get_algorithm("crc32c")
        message = b"sctp chunk"
        assert engine.field(message) == engine.compute(message).to_bytes(
            4, "little"
        )


class TestDeprecationShims:
    def test_two_arg_crc_verify_warns_but_works(self):
        engine = get_algorithm("crc16-ccitt")
        with pytest.warns(DeprecationWarning):
            assert engine.verify(b"123456789", 0x29B1)
        with pytest.warns(DeprecationWarning):
            assert not engine.verify(b"123456789", 0x29B2)

    def test_two_arg_suffix_verify_warns_but_works(self):
        import zlib

        adler = get_algorithm("adler32")
        with pytest.warns(DeprecationWarning):
            assert adler.verify(b"abc", zlib.adler32(b"abc"))
        with pytest.warns(DeprecationWarning):
            assert not adler.verify(b"abc", 0)

    def test_two_arg_xor16_verify_warns_but_works(self):
        xor = get_algorithm("xor16")
        with pytest.warns(DeprecationWarning):
            assert xor.verify(b"\xab\xcd", 0xABCD)

    def test_single_arg_verify_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for name in available_algorithms():
                algorithm = get_algorithm(name)
                message = b"no warnings on the new shape"
                assert algorithm.verify(message + algorithm.field(message))


class TestRegistryKinds:
    def test_crc_engines_are_crcs(self):
        crcs = [n for n in available_algorithms()
                if isinstance(get_algorithm(n), CRCEngine)]
        assert set(crcs) == {
            "crc10-atm", "crc16-arc", "crc16-ccitt", "crc32-aal5", "crc32c"
        }
