"""Direct tests for the vectorized candidate header checks."""

import numpy as np
import pytest

from repro.core.checks import candidate_header_validity, candidate_pseudo_sums
from repro.protocols.packetizer import Packetizer, PacketizerConfig
from repro.protocols.tcp import pseudo_header_word_sum


def header_cell(config=None, payload=bytes(256)):
    config = config or PacketizerConfig()
    packet = Packetizer(config).packetize(payload)[0]
    cell = np.zeros(48, dtype=np.uint8)
    cell[: min(48, len(packet.ip_packet))] = np.frombuffer(
        packet.ip_packet[:48], dtype=np.uint8
    )
    return cell, len(packet.ip_packet)


class TestValidity:
    def test_genuine_header_passes(self):
        cell, iplen = header_cell()
        cand = cell[None, None, :]
        assert candidate_header_validity(cand, iplen).all()

    def test_wrong_expected_length_fails(self):
        cell, iplen = header_cell()
        cand = cell[None, None, :]
        assert not candidate_header_validity(cand, iplen + 48).any()

    def test_data_cell_fails(self):
        rng = np.random.default_rng(0)
        cand = rng.integers(0, 256, size=(1, 500, 48)).astype(np.uint8)
        assert not candidate_header_validity(cand, 296).any()

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda c: c.__setitem__(0, 0x46),        # IHL 6
            lambda c: c.__setitem__(9, 17),          # UDP protocol
            lambda c: c.__setitem__(11, c[11] ^ 1),  # IP checksum corrupt
            lambda c: c.__setitem__(32, 0x60),       # data offset 6
            lambda c: c.__setitem__(33, 0x12),       # SYN set
            lambda c: c.__setitem__(33, 0x00),       # no ACK
        ],
    )
    def test_each_check_rejects(self, mutate):
        cell, iplen = header_cell()
        mutated = cell.copy()
        mutate(mutated)
        cand = mutated[None, None, :]
        assert not candidate_header_validity(cand, iplen).any()

    def test_ip_checksum_check_waivable(self):
        cell, iplen = header_cell(PacketizerConfig(fill_ip_header=False))
        cand = cell[None, None, :]
        assert not candidate_header_validity(cand, iplen).any()
        assert candidate_header_validity(
            cand, iplen, require_ip_checksum=False
        ).all()

    def test_batch_shapes(self):
        cell, iplen = header_cell()
        cand = np.stack([np.stack([cell] * 5)] * 3)  # (3, 5, 48)
        valid = candidate_header_validity(cand, iplen)
        assert valid.shape == (3, 5)
        assert valid.all()


class TestPseudoSums:
    def test_matches_scalar_pseudo_header(self):
        config = PacketizerConfig(src="10.1.2.3", dst="172.16.0.9")
        cell, iplen = header_cell(config)
        sums = candidate_pseudo_sums(cell[None, None, :], iplen - 20)
        expected = pseudo_header_word_sum(config.src, config.dst, iplen - 20)
        assert int(sums[0, 0]) == expected

    def test_vectorized_over_candidates(self):
        cell_a, iplen = header_cell(PacketizerConfig(src="1.1.1.1"))
        cell_b, _ = header_cell(PacketizerConfig(src="2.2.2.2"))
        cand = np.stack([cell_a, cell_b])[None]
        sums = candidate_pseudo_sums(cand, iplen - 20)
        assert sums.shape == (1, 2)
        assert sums[0, 0] != sums[0, 1]
