"""JSON round-tripping of the result containers.

Satellite requirement: every result dataclass must satisfy
``from_json(to_json(x)) == x`` — the cache's correctness rests on it.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.results import SpliceCounters
from repro.experiments.report import ExperimentReport

counts = st.integers(min_value=0, max_value=2**40)
str_counters = st.dictionaries(
    st.sampled_from(["crc16-ccitt", "crc16-arc", "crc10-atm", "fletcher256"]),
    st.integers(min_value=1, max_value=2**32),
    max_size=4,
).map(Counter)
int_counters = st.dictionaries(
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=1, max_value=2**32),
    max_size=6,
).map(Counter)

splice_counters = st.builds(
    SpliceCounters,
    total=counts,
    caught_by_header=counts,
    identical=counts,
    remaining=counts,
    missed_transport=counts,
    missed_crc32=counts,
    missed_aux=str_counters,
    identical_rejected=counts,
    remaining_by_len=int_counters,
    missed_by_len=int_counters,
    remaining_with_hdr2=counts,
    missed_with_hdr2=counts,
    pairs=counts,
    packets=counts,
    files=counts,
)

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False),
    st.text(max_size=30),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=12,
)

reports = st.builds(
    ExperimentReport,
    experiment_id=st.text(max_size=20),
    title=st.text(max_size=40),
    text=st.text(max_size=200),
    data=st.dictionaries(st.text(max_size=10), json_values, max_size=5),
)


class TestSpliceCountersRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(splice_counters)
    def test_round_trip_identity(self, counters):
        assert SpliceCounters.from_json(counters.to_json()) == counters

    def test_default_round_trips(self):
        assert SpliceCounters.from_json(SpliceCounters().to_json()) == SpliceCounters()

    def test_counter_keys_recover_their_types(self):
        counters = SpliceCounters(remaining=7)
        counters.remaining_by_len[3] = 7
        counters.missed_aux["crc16-ccitt"] = 2
        loaded = SpliceCounters.from_json(counters.to_json())
        assert loaded.remaining_by_len[3] == 7  # int key, not "3"
        assert loaded.miss_rate_by_len(3) == counters.miss_rate_by_len(3)
        assert loaded.miss_rate_aux("crc16-ccitt") == counters.miss_rate_aux(
            "crc16-ccitt"
        )  # str key recovered

    def test_merge_of_round_tripped_counters(self):
        a = SpliceCounters(total=5, remaining=5)
        a.remaining_by_len[2] = 5
        b = SpliceCounters.from_json(a.to_json())
        assert (a + b).remaining_by_len[2] == 10

    def test_unknown_fields_are_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            SpliceCounters.from_dict({"total": 1, "bogus_field": 2})

    @settings(max_examples=50, deadline=None)
    @given(splice_counters)
    def test_json_text_is_canonical(self, counters):
        assert counters.to_json() == SpliceCounters.from_json(counters.to_json()).to_json()


class TestExperimentReportRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(reports)
    def test_round_trip_identity(self, report):
        assert ExperimentReport.from_json(report.to_json()) == report

    def test_infinities_survive(self):
        report = ExperimentReport("x", "t", "body", {"effective_bits": float("inf")})
        assert ExperimentReport.from_json(report.to_json()) == report

    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            ExperimentReport.from_json('{"experiment_id": "x"}')

    def test_real_experiment_report_round_trips(self):
        from repro.experiments.registry import run_experiment

        report = run_experiment("corpus-stats", fs_bytes=40_000, seed=2)
        loaded = ExperimentReport.from_json(report.to_json())
        assert loaded.text == report.text
        assert loaded.to_json() == report.to_json()
