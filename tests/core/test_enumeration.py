"""Tests for the splice enumeration combinatorics."""

from math import comb

import numpy as np
import pytest

from repro.core.enumeration import (
    enumerate_splices,
    splice_count,
    structural_splice_count,
)


class TestCounts:
    def test_paper_7_cell_counts(self):
        # Section 4.6: C(2m-3, m-2) = 462 header-led splices for m = 7.
        assert splice_count(7) == 462
        assert structural_splice_count(7, 7) == comb(12, 6) - 1 == 923

    def test_structural_count_formula(self):
        for n1 in range(2, 8):
            for n2 in range(2, 8):
                enum = enumerate_splices(n1, n2)
                assert enum.splices == structural_splice_count(n1, n2)

    def test_tiny_frames_cannot_splice(self):
        assert enumerate_splices(1, 7).splices == 0
        assert enumerate_splices(7, 1).splices == 0
        assert splice_count(1) == 0

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            structural_splice_count(0, 5)


class TestSelectionMatrix:
    def test_rows_strictly_increasing(self):
        enum = enumerate_splices(5, 6)
        assert (np.diff(enum.selection, axis=1) > 0).all()

    def test_rows_unique(self):
        enum = enumerate_splices(5, 5)
        rows = {tuple(row) for row in enum.selection}
        assert len(rows) == enum.splices

    def test_indices_in_candidate_range(self):
        enum = enumerate_splices(4, 6)
        candidates = (4 - 1) + (6 - 1)
        assert enum.selection.min() >= 0
        assert enum.selection.max() < candidates

    def test_intact_second_frame_excluded(self):
        enum = enumerate_splices(7, 7)
        intact = tuple(range(6, 12))
        assert intact not in {tuple(row) for row in enum.selection}

    def test_header_led_rows_match_paper_count(self):
        enum = enumerate_splices(7, 7)
        assert int((enum.selection[:, 0] == 0).sum()) == splice_count(7)


class TestDerivedArrays:
    def test_substitution_length(self):
        enum = enumerate_splices(7, 7)
        # k = cells from the second packet, including the forced trailer.
        expected = (enum.selection >= 6).sum(axis=1) + 1
        assert (enum.substitution_len == expected).all()
        assert enum.substitution_len.min() == 1
        # k = 7 would be the intact second frame, which is excluded.
        assert enum.substitution_len.max() == 6

    def test_has_second_header(self):
        enum = enumerate_splices(7, 7)
        expected = (enum.selection == 6).any(axis=1)
        assert (enum.has_second_header == expected).all()
        # Roughly half of the header-led splices include the second
        # header (the paper's Section 5.3 case split).
        led = enum.selection[:, 0] == 0
        share = enum.has_second_header[led].mean()
        assert 0.3 < share < 0.7

    def test_slots_property(self):
        enum = enumerate_splices(7, 5)
        assert enum.slots == 4
        assert enum.n1 == 7 and enum.n2 == 5


class TestCaps:
    def test_max_splices_cap(self):
        with pytest.raises(ValueError, match="max_splices"):
            enumerate_splices(30, 30, max_splices=1000)

    def test_cache_returns_same_object(self):
        assert enumerate_splices(7, 7) is enumerate_splices(7, 7)
