"""Tests for the loss-model weighting of the enumeration."""

import numpy as np
import pytest

from repro.core.engine import EngineOptions, SpliceEngine
from repro.core.enumeration import enumerate_splices
from repro.core.lossmodel import (
    selection_keep_patterns,
    splice_pattern_probabilities,
    weighted_splice_rates,
)
from repro.corpus.generators import generate
from repro.protocols.cellstream import GilbertLoss, IndependentLoss
from repro.protocols.ftpsim import FileTransferSimulator
from repro.protocols.packetizer import PacketizerConfig


class TestKeepPatterns:
    def test_shape_and_invariants(self):
        enum = enumerate_splices(7, 7)
        patterns = selection_keep_patterns(enum)
        assert patterns.shape == (923, 14)
        assert (patterns.sum(axis=1) == 7).all()  # n2 cells kept, always
        assert not patterns[:, 6].any()  # frame 1's marked cell dropped
        assert patterns[:, 13].all()  # frame 2's marked cell kept

    def test_asymmetric_pair(self):
        enum = enumerate_splices(7, 3)
        patterns = selection_keep_patterns(enum)
        assert patterns.shape == (enum.splices, 10)
        assert (patterns.sum(axis=1) == 3).all()

    def test_wire_mapping(self):
        # A splice keeping candidates [0, 1] of a (3, 3) pair keeps wire
        # positions [0, 1] or includes positions after the skipped
        # marked cell (index 2) for second-frame candidates.
        enum = enumerate_splices(3, 3)
        patterns = selection_keep_patterns(enum)
        for row, selection in zip(patterns, enum.selection):
            for candidate in selection:
                wire = candidate if candidate < 2 else candidate + 1
                assert row[wire]


class TestPatternProbabilities:
    def test_iid_uniform_over_splices(self):
        enum = enumerate_splices(7, 7)
        weights = splice_pattern_probabilities(enum, IndependentLoss(0.37))
        assert np.allclose(weights, weights[0])
        expected = (1 - 0.37) ** 7 * 0.37 ** 7
        assert weights[0] == pytest.approx(expected)

    def test_gilbert_matches_monte_carlo(self):
        enum = enumerate_splices(4, 4)
        model = GilbertLoss(0.15, 0.5)
        weights = splice_pattern_probabilities(enum, model)
        patterns = selection_keep_patterns(enum)
        # Pick the highest-weight pattern (contiguous drops) and verify
        # its probability by simulation.
        target_row = int(np.argmax(weights))
        target = patterns[target_row]
        rng = np.random.default_rng(0)
        trials = 150_000
        hits = sum(
            (model.keep_mask(8, rng) == target).all() for _ in range(trials)
        )
        assert weights[target_row] == pytest.approx(hits / trials, abs=4e-3)

    def test_gilbert_prefers_contiguous_drops(self):
        enum = enumerate_splices(7, 7)
        model = GilbertLoss(0.05, 0.3)
        weights = splice_pattern_probabilities(enum, model)
        patterns = selection_keep_patterns(enum)
        # The prefix-splice (drop a contiguous tail+head block) should
        # outweigh a maximally fragmented drop pattern.
        drops = ~patterns
        def fragmentation(row):
            return int(np.diff(drops[row].astype(int)).clip(min=0).sum())
        most_contiguous = min(range(len(weights)), key=fragmentation)
        most_fragmented = max(range(len(weights)), key=fragmentation)
        assert weights[most_contiguous] > 5 * weights[most_fragmented]

    def test_probabilities_sum_below_one(self):
        enum = enumerate_splices(5, 5)
        for model in (IndependentLoss(0.2), GilbertLoss(0.1, 0.4)):
            weights = splice_pattern_probabilities(enum, model)
            assert 0 < weights.sum() < 1  # splices are rare events

    def test_unsupported_model(self):
        enum = enumerate_splices(3, 3)
        with pytest.raises(TypeError):
            splice_pattern_probabilities(enum, object())


class TestWeightedRates:
    @pytest.fixture
    def units(self):
        return FileTransferSimulator().transfer(generate("gmon", 20_000, 3))

    def test_iid_conditional_equals_engine_rate(self, units):
        options = EngineOptions(aux_crcs=())
        rates = weighted_splice_rates(units, IndependentLoss(0.15), options)
        counters = SpliceEngine(options).evaluate_stream(units)
        assert rates["conditional_miss_pct"] == pytest.approx(
            counters.miss_rate_transport
        )

    def test_iid_conditional_independent_of_p(self, units):
        options = EngineOptions(aux_crcs=())
        a = weighted_splice_rates(units, IndependentLoss(0.05), options)
        b = weighted_splice_rates(units, IndependentLoss(0.4), options)
        assert a["conditional_miss_pct"] == pytest.approx(b["conditional_miss_pct"])
        assert a["p_transport_miss"] < b["p_transport_miss"]

    def test_gilbert_changes_conditional(self, units):
        options = EngineOptions(aux_crcs=())
        iid = weighted_splice_rates(units, IndependentLoss(0.2), options)
        burst = weighted_splice_rates(units, GilbertLoss(0.05, 0.3), options)
        assert burst["conditional_miss_pct"] != pytest.approx(
            iid["conditional_miss_pct"]
        )
        assert burst["pairs"] == iid["pairs"] > 0
