"""Tests for sampled splice enumeration and the engine's sampling mode."""

import numpy as np
import pytest

from repro.core.engine import EngineOptions, SpliceEngine
from repro.core.enumeration import (
    enumerate_splices,
    sample_splices,
    structural_splice_count,
)
from repro.corpus.generators import generate
from repro.protocols.ftpsim import FileTransferSimulator
from repro.protocols.packetizer import PacketizerConfig


class TestSampleSplices:
    def test_small_shapes_fall_back_to_exact(self):
        enum = sample_splices(7, 7, 10_000)
        assert enum.splices == structural_splice_count(7, 7)

    def test_sampled_rows_are_valid_selections(self):
        enum = sample_splices(13, 13, 5_000)
        assert enum.splices == 5_000
        assert (np.diff(enum.selection, axis=1) > 0).all()
        assert enum.selection.min() >= 0
        assert enum.selection.max() < 24
        # No duplicates, no intact row.
        rows = {tuple(r) for r in enum.selection}
        assert len(rows) == 5_000
        assert tuple(range(12, 24)) not in rows

    def test_derived_arrays_consistent(self):
        enum = sample_splices(13, 13, 2_000)
        expected = (enum.selection >= 12).sum(axis=1) + 1
        assert (enum.substitution_len == expected).all()

    def test_cached(self):
        assert sample_splices(13, 13, 2_000) is sample_splices(13, 13, 2_000)

    def test_seed_changes_sample(self):
        a = sample_splices(13, 13, 2_000, seed=1)
        b = sample_splices(13, 13, 2_000, seed=2)
        assert not np.array_equal(a.selection, b.selection)


class TestEngineSampling:
    def test_sampling_unbiased_rate(self):
        # On a 7-cell corpus the sampled estimate should track the
        # exact rate closely.
        data = generate("gmon", 50_000, 3)
        units = FileTransferSimulator().transfer(data)
        exact = SpliceEngine(EngineOptions(aux_crcs=())).evaluate_stream(units)
        sampled = SpliceEngine(
            EngineOptions(aux_crcs=(), sample_splices=400)
        ).evaluate_stream(units)
        assert sampled.total < exact.total
        assert exact.miss_rate_transport > 1
        assert sampled.miss_rate_transport == pytest.approx(
            exact.miss_rate_transport, rel=0.5
        )

    def test_large_mss_runs_within_budget(self):
        config = PacketizerConfig(mss=1024)
        units = FileTransferSimulator(config).transfer(generate("english", 30_000, 1))
        options = EngineOptions.from_packetizer(
            config, sample_splices=2_000, aux_crcs=()
        )
        counters = SpliceEngine(options).evaluate_stream(units)
        # 23-cell packets: exact enumeration would be ~2 * 10^12 rows.
        assert 0 < counters.total <= 2_000 * counters.pairs
        counters.sanity_check()

    def test_exact_mode_still_caps(self):
        config = PacketizerConfig(mss=1024)
        units = FileTransferSimulator(config).transfer(bytes(4000))
        engine = SpliceEngine(EngineOptions(aux_crcs=(), max_splices=1000))
        with pytest.raises(ValueError, match="max_splices"):
            engine.evaluate_stream(units)
