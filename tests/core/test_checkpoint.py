"""The sweep controller: signals, deadlines, and checkpointed stops."""

from __future__ import annotations

import signal
import time

import pytest

from repro.core.checkpoint import (
    NULL_CONTROLLER,
    SweepController,
    SweepInterrupted,
    current_controller,
    sweep_guard,
)
from repro.core.experiment import run_splice_experiment
from repro.faults.plan import FaultPlan
from repro.protocols.packetizer import PacketizerConfig
from repro.store.journal import ShardJournal, journal_path
from tests.conftest import make_filesystem

KINDS = [
    ("english", 6_000), ("gmon", 5_000),
    ("c-source", 6_000), ("zero-heavy", 5_000),
]


@pytest.fixture
def fs():
    return make_filesystem(KINDS, seed=23, name="stopbox")


@pytest.fixture
def config():
    return PacketizerConfig()


class TestController:
    def test_validation(self):
        with pytest.raises(ValueError, match="deadline"):
            SweepController(deadline=0)
        with pytest.raises(ValueError, match="shard timeout"):
            SweepController(shard_timeout=-1)

    def test_no_stop_by_default(self):
        controller = SweepController()
        assert controller.stop_reason() is None
        assert not controller.deadline_exceeded()

    def test_request_stop_wins_and_sticks(self):
        controller = SweepController()
        controller.request_stop(signal.SIGTERM)
        controller.request_stop(signal.SIGINT)  # first request wins
        assert controller.stop_reason() == "signal"
        assert controller.signal_name() == "SIGTERM"
        with pytest.raises(SweepInterrupted) as excinfo:
            controller.interrupt(3, 7)
        exc = excinfo.value
        assert exc.signum == signal.SIGTERM
        assert "checkpointed at shard 3/7" in str(exc)

    def test_deadline_expires_on_the_monotonic_clock(self):
        controller = SweepController(deadline=0.01)
        assert controller.stop_reason() is None or True  # may race; poll
        time.sleep(0.02)
        assert controller.deadline_exceeded()
        assert controller.stop_reason() == "deadline"

    def test_signal_outranks_deadline(self):
        controller = SweepController(deadline=0.001)
        time.sleep(0.005)
        controller.request_stop()
        assert controller.stop_reason() == "signal"

    def test_provenance_lists_only_set_knobs(self):
        assert SweepController().provenance() == {}
        assert SweepController(
            deadline=5, shard_timeout=2, resume=True
        ).provenance() == {"deadline": 5, "shard_timeout": 2, "resume": True}
        assert NULL_CONTROLLER.provenance() == {}


class TestGuard:
    def test_guard_installs_and_restores_the_controller(self):
        assert current_controller() is NULL_CONTROLLER
        with sweep_guard(shard_timeout=2.5) as controller:
            assert current_controller() is controller
            assert current_controller().shard_timeout == 2.5
        assert current_controller() is NULL_CONTROLLER

    def test_nested_guards_stack(self):
        with sweep_guard() as outer:
            with sweep_guard(deadline=9) as inner:
                assert current_controller() is inner
            assert current_controller() is outer

    def test_signal_handlers_are_restored(self):
        before_int = signal.getsignal(signal.SIGINT)
        before_term = signal.getsignal(signal.SIGTERM)
        with sweep_guard():
            assert signal.getsignal(signal.SIGINT) != before_int
        assert signal.getsignal(signal.SIGINT) is before_int
        assert signal.getsignal(signal.SIGTERM) is before_term

    def test_install_signals_false_leaves_handlers_alone(self):
        before = signal.getsignal(signal.SIGINT)
        with sweep_guard(install_signals=False):
            assert signal.getsignal(signal.SIGINT) is before

    def test_real_signal_sets_the_stop_flag(self):
        import os

        with sweep_guard() as controller:
            os.kill(os.getpid(), signal.SIGINT)
            # The handler ran synchronously in this (main) thread.
            assert controller.stop_signal == signal.SIGINT
            assert controller.stop_reason() == "signal"


class TestSweepIntegration:
    """The interrupt/checkpoint/resume loop, in-process and deterministic.

    The ``sigint`` fault directive delivers a real SIGINT to the
    (sequential) sweep right before shard 1 computes; the installed
    handler converts it to a stop request, the shard finishes, and the
    sweep raises :class:`SweepInterrupted` at the boundary — after
    flushing the journal.  A resumed run completes bit-identically.
    """

    def test_sigint_checkpoints_then_resume_is_bit_identical(
        self, tmp_path, fs, config
    ):
        clean = run_splice_experiment(fs, config).counters
        path = journal_path(tmp_path, fs.name, config)
        plan = FaultPlan(0, worker_script={1: "sigint"})

        with sweep_guard() as controller:
            with pytest.raises(SweepInterrupted) as excinfo:
                run_splice_experiment(
                    fs, config, faults=plan, journal=ShardJournal(path)
                )
        assert excinfo.value.signum == signal.SIGINT
        assert excinfo.value.done == 2  # shards 0 and 1 checkpointed
        assert excinfo.value.total == len(KINDS)
        assert controller.signal_name() == "SIGINT"
        assert path.is_file()  # the journal survived the interrupt

        resumed = run_splice_experiment(
            fs, config, journal=ShardJournal(path), resume=True
        )
        assert resumed.counters == clean
        assert not resumed.health.eventful  # resume is not a degradation
        assert not path.is_file()  # completion deletes the journal

    def test_sigterm_maps_to_its_own_signum(self, tmp_path, fs, config):
        path = journal_path(tmp_path, fs.name, config)
        plan = FaultPlan(0, worker_script={0: "sigterm"})
        with sweep_guard():
            with pytest.raises(SweepInterrupted) as excinfo:
                run_splice_experiment(
                    fs, config, faults=plan, journal=ShardJournal(path)
                )
        assert excinfo.value.signum == signal.SIGTERM
        assert "SIGTERM" in str(excinfo.value)

    def test_deadline_returns_partial_degraded_result(self, fs, config):
        with sweep_guard(deadline=0.000_1, install_signals=False) as ctl:
            time.sleep(0.002)
            result = run_splice_experiment(fs, config)
        assert ctl.deadline_fired
        assert result.health.interrupted == "deadline"
        assert result.health.eventful
        assert any(
            "deadline exceeded" in note
            for note in result.health.degradations
        )
        assert result.counters.total == 0  # stopped before shard 0

    def test_ambient_journal_dir_and_resume_flow(self, tmp_path, fs, config):
        clean = run_splice_experiment(fs, config).counters
        plan = FaultPlan(0, worker_script={1: "sigint"})
        with sweep_guard(journal_dir=tmp_path):
            with pytest.raises(SweepInterrupted):
                run_splice_experiment(fs, config, faults=plan)
        path = journal_path(tmp_path, fs.name, config)
        assert path.is_file()
        with sweep_guard(journal_dir=tmp_path, resume=True):
            resumed = run_splice_experiment(fs, config)
        assert resumed.counters == clean
        assert not path.is_file()

    def test_stale_journal_is_discarded_on_config_change(
        self, tmp_path, fs, config
    ):
        plan = FaultPlan(0, worker_script={1: "sigint"})
        with sweep_guard(journal_dir=tmp_path):
            with pytest.raises(SweepInterrupted):
                run_splice_experiment(fs, config, faults=plan)
        # Same label coordinates, different engine options -> different
        # fingerprint -> the journal is discarded loudly, not merged.
        changed = PacketizerConfig(mss=512)
        same_label_path = journal_path(tmp_path, fs.name, config)
        changed_path = journal_path(tmp_path, fs.name, changed)
        if same_label_path == changed_path:
            with sweep_guard(journal_dir=tmp_path, resume=True):
                with pytest.warns(RuntimeWarning, match="stale"):
                    run_splice_experiment(fs, changed)
        else:  # label differs: the stale journal is simply not found
            with sweep_guard(journal_dir=tmp_path, resume=True):
                run_splice_experiment(fs, changed)
            assert same_label_path.is_file()
