"""Scalar-vs-batch conformance: two evaluation paths, one answer.

The batch compute tier's contract is *bit identity*: the vectorized
path (``--engine batch``) and the byte-at-a-time reference receiver
(``--engine scalar``) run the same enumeration and must agree on every
per-splice verdict, every counter, and every aggregation layout
(``--workers 1`` vs ``--workers 4``).  These tests pin that contract
at all three levels, plus the O(cells) cut-splice shortcut against the
full enumeration's columns.
"""

import dataclasses

import numpy as np
import pytest

from repro.checksums.batch import EngineKind
from repro.core.batch import (
    cut_selections,
    evaluate_cut_splices,
    resolve_engine_kind,
)
from repro.core.engine import EngineOptions, SpliceEngine
from repro.core.experiment import run_splice_experiment
from repro.corpus.generators import generate
from repro.protocols.ftpsim import FileTransferSimulator
from repro.protocols.packetizer import ChecksumPlacement, PacketizerConfig
from tests.conftest import make_filesystem

CONFIGS = [
    PacketizerConfig(),
    PacketizerConfig(placement=ChecksumPlacement.TRAILER),
    PacketizerConfig(algorithm="fletcher255"),
    PacketizerConfig(algorithm="fletcher256"),
]


def _engines(config):
    options = EngineOptions.from_packetizer(config)
    return (
        SpliceEngine(dataclasses.replace(options, engine="batch")),
        SpliceEngine(dataclasses.replace(options, engine="scalar")),
    )


def _pairs(units):
    for first, second in zip(units, units[1:]):
        yield (
            first.frame.cells()[None],
            second.frame.cells()[None],
            len(first.packet.ip_packet),
            len(second.packet.ip_packet),
        )


class TestVerdictIdentity:
    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: "%s-%s" % (
        c.algorithm, c.placement.value,
    ))
    def test_every_verdict_bit_matches(self, config):
        batch, scalar = _engines(config)
        assert batch.engine_kind is EngineKind.BATCH
        assert scalar.engine_kind is EngineKind.SCALAR
        units = FileTransferSimulator(config).transfer(
            generate("gmon", 5_000, 11)
        )
        compared = 0
        for cells1, cells2, iplen1, iplen2 in _pairs(units):
            enum_b, v_batch = batch.splice_verdicts(
                cells1, cells2, iplen1, iplen2
            )
            enum_s, v_scalar = scalar.splice_verdicts(
                cells1, cells2, iplen1, iplen2
            )
            assert np.array_equal(enum_b.selection, enum_s.selection)
            for key in ("header_pass", "transport", "crc32", "identical"):
                assert np.array_equal(v_batch[key], v_scalar[key]), key
            assert v_batch["aux"].keys() == v_scalar["aux"].keys()
            for name in v_batch["aux"]:
                assert np.array_equal(
                    v_batch["aux"][name], v_scalar["aux"][name]
                ), name
            compared += enum_b.splices
        assert compared > 0

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_stream_counters_identical_across_seeds(self, seed):
        batch, scalar = _engines(PacketizerConfig())
        units = FileTransferSimulator(PacketizerConfig()).transfer(
            generate("english", 6_000, seed)
        )
        assert batch.evaluate_stream(units) == scalar.evaluate_stream(units)


class TestWorkerLayouts:
    @pytest.mark.parametrize("engine", ["batch", "scalar"])
    def test_counters_identical_across_workers(self, engine):
        fs = make_filesystem([("english", 4_000), ("gmon", 3_000)])
        one = run_splice_experiment(fs, workers=1, engine=engine)
        four = run_splice_experiment(fs, workers=4, engine=engine)
        assert one.counters == four.counters
        assert one.options.engine == engine

    def test_scalar_equals_batch_through_the_driver(self):
        fs = make_filesystem([("c-source", 4_000), ("zero-heavy", 3_000)])
        batch = run_splice_experiment(fs, engine="batch")
        scalar = run_splice_experiment(fs, engine="scalar", workers=4)
        assert batch.counters == scalar.counters
        assert batch.counters.total > 0


class TestCutSplices:
    def test_cut_columns_match_full_enumeration(self):
        config = PacketizerConfig()
        options = EngineOptions.from_packetizer(config)
        engine = SpliceEngine(options)
        units = FileTransferSimulator(config).transfer(
            generate("gmon", 5_000, 4)
        )
        checked = 0
        for cells1, cells2, iplen1, iplen2 in _pairs(units):
            enum, full = engine.splice_verdicts(
                cells1, cells2, iplen1, iplen2
            )
            selections, cuts = evaluate_cut_splices(
                cells1, cells2, iplen1, iplen2, options
            )
            assert np.array_equal(
                selections,
                cut_selections(cells1.shape[1], cells2.shape[1]),
            )
            for j in range(1, selections.shape[0]):
                # Cut 0 (the intact second frame) is deliberately
                # excluded from the enumeration; every other cut has
                # exactly one column there.
                matches = np.where(
                    (enum.selection == selections[j]).all(axis=1)
                )[0]
                assert matches.size == 1, j
                col = int(matches[0])
                for key in ("header_pass", "transport", "crc32",
                            "identical"):
                    assert np.array_equal(
                        cuts[key][:, j], full[key][:, col]
                    ), (key, j)
                for name in cuts["aux"]:
                    assert np.array_equal(
                        cuts["aux"][name][:, j], full["aux"][name][:, col]
                    ), (name, j)
                checked += 1
        assert checked > 0

    def test_cut_zero_is_the_intact_frame(self):
        config = PacketizerConfig()
        options = EngineOptions.from_packetizer(config)
        units = FileTransferSimulator(config).transfer(
            generate("english", 4_000, 9)
        )
        for cells1, cells2, iplen1, iplen2 in _pairs(units):
            selections, cuts = evaluate_cut_splices(
                cells1, cells2, iplen1, iplen2, options
            )
            # An untouched frame 2 passes every check.
            for key in ("header_pass", "transport", "crc32", "identical"):
                assert cuts[key][:, 0].all(), key
            for name in cuts["aux"]:
                assert cuts["aux"][name][:, 0].all(), name


class TestEngineResolution:
    def test_auto_resolves_to_batch_for_registry_algorithms(self):
        assert resolve_engine_kind(EngineOptions()) is EngineKind.BATCH

    def test_explicit_kind_wins(self):
        options = EngineOptions(engine="scalar")
        assert resolve_engine_kind(options) is EngineKind.SCALAR

    def test_unknown_algorithm_falls_back_to_scalar(self):
        # resolve_engine_kind must not mask the engine's own (clearer)
        # unsupported-algorithm error.
        options = EngineOptions(algorithm="md5")
        assert resolve_engine_kind(options) is EngineKind.SCALAR
        with pytest.raises(ValueError):
            SpliceEngine(options)

    def test_engine_rides_in_options_record(self):
        fs = make_filesystem([("english", 2_000)])
        result = run_splice_experiment(fs, engine="scalar")
        assert result.options.engine == "scalar"
        default = run_splice_experiment(fs)
        assert default.options.engine == "auto"
