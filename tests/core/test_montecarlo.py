"""Tests for the Monte Carlo drop-and-reassemble simulation."""

import pytest

from repro.core.engine import EngineOptions, SpliceEngine
from repro.core.montecarlo import MonteCarloTally, run_monte_carlo
from repro.corpus.generators import generate
from repro.protocols.cellstream import (
    EarlyPacketDiscard,
    GilbertLoss,
    IndependentLoss,
)
from repro.protocols.ftpsim import FileTransferSimulator
from repro.protocols.packetizer import ChecksumPlacement, PacketizerConfig

CONFIG = PacketizerConfig()
OPTIONS = EngineOptions.from_packetizer(CONFIG, aux_crcs=())


def transfer(kind, size, seed=3):
    return FileTransferSimulator(CONFIG).transfer(generate(kind, size, seed))


class TestBasics:
    def test_no_loss_delivers_everything_intact(self):
        units = transfer("english", 3000)
        tally = run_monte_carlo(units, IndependentLoss(0.0), OPTIONS, trials=2)
        assert tally.frames_received == 2 * len(units)
        assert tally.delivered_intact == tally.frames_received
        assert tally.corrupted_frames == 0

    def test_tally_sanity_and_addition(self):
        units = transfer("gmon", 8000)
        a = run_monte_carlo(units, IndependentLoss(0.2), OPTIONS, trials=5, seed=1)
        b = run_monte_carlo(units, IndependentLoss(0.2), OPTIONS, trials=5, seed=2)
        merged = a + b
        assert merged.frames_received == a.frames_received + b.frames_received
        assert merged.sanity_check()

    def test_deterministic_given_seed(self):
        units = transfer("gmon", 5000)
        a = run_monte_carlo(units, IndependentLoss(0.25), OPTIONS, trials=4, seed=7)
        b = run_monte_carlo(units, IndependentLoss(0.25), OPTIONS, trials=4, seed=7)
        assert a == b


class TestDetectionAccounting:
    def test_losses_produce_detections(self):
        units = transfer("gmon", 20_000)
        tally = run_monte_carlo(units, IndependentLoss(0.25), OPTIONS,
                                trials=20, seed=1)
        assert tally.cells_delivered < tally.cells_sent
        assert tally.detected_length > 0
        # On zero-heavy gmon data some splices are benign-identical.
        assert tally.frames_received > 0

    def test_transport_misses_are_crc_caught(self):
        # The paper: "There were no splices missed by both CRC and the
        # TCP checksum" -- at our scale undetected corruption never
        # survives the CRC.
        units = transfer("gmon", 30_000)
        tally = run_monte_carlo(units, IndependentLoss(0.25), OPTIONS,
                                trials=40, seed=2)
        assert tally.transport_missed >= 0
        assert tally.undetected_corruption == 0
        assert tally.detected_by_transport_only == 0  # CRC never the weak one

    def test_epd_eliminates_corruption(self):
        units = transfer("gmon", 20_000)
        tally = run_monte_carlo(
            units, EarlyPacketDiscard(IndependentLoss(0.25)), OPTIONS,
            trials=20, seed=3,
        )
        assert tally.corrupted_frames == 0
        assert tally.undetected_corruption == 0

    def test_rate_agrees_with_enumeration(self):
        # Statistical cross-check of the whole pipeline: the Monte
        # Carlo transport-miss rate over corrupted frames should agree
        # with the exact enumeration's within sampling noise.
        units = transfer("gmon", 60_000)
        tally = run_monte_carlo(units, IndependentLoss(0.25), OPTIONS,
                                trials=120, seed=4)
        counters = SpliceEngine(OPTIONS).evaluate_stream(units)
        assert tally.corrupted_frames > 50
        mc = tally.transport_miss_rate
        exact = counters.miss_rate_transport
        assert exact > 1.0  # gmon is a strong-signal corpus
        # Loose 3-sigma-ish binomial bound.
        import math

        sigma = 100 * math.sqrt(
            exact / 100 * (1 - exact / 100) / tally.corrupted_frames
        )
        assert abs(mc - exact) < max(4 * sigma, 2.0)


class TestTrailerPlacement:
    def test_trailer_spurious_rejections_observed(self):
        config = CONFIG.with_overrides(placement=ChecksumPlacement.TRAILER)
        options = EngineOptions.from_packetizer(config, aux_crcs=())
        units = FileTransferSimulator(config).transfer(bytes(20_000))
        tally = run_monte_carlo(units, IndependentLoss(0.25), options,
                                trials=30, seed=5)
        # All-zero payloads: splices deliver identical data, and the
        # trailer checksum (computed with the other packet's sequence
        # number) rejects them -- benign spurious rejections.
        assert tally.spurious_rejects > 0
        assert tally.undetected_corruption == 0


def test_tally_fields_complete():
    tally = MonteCarloTally()
    assert tally.corrupted_frames == 0
    assert tally.transport_miss_rate == 0.0
    assert tally.sanity_check()


class TestSpanTracking:
    def test_spans_accounted(self):
        units = transfer("gmon", 20_000)
        tally = run_monte_carlo(units, IndependentLoss(0.25), OPTIONS,
                                trials=20, seed=9)
        assert sum(tally.corrupted_by_span.values()) == tally.corrupted_frames
        if tally.corrupted_by_span:
            assert min(tally.corrupted_by_span) >= 2

    def test_bursty_loss_reaches_wider_spans(self):
        # Bursty losses can take out consecutive marked cells, forming
        # splices that span three or more original frames -- the case
        # the two-packet enumeration abstracts away.
        units = transfer("gmon", 40_000)
        tally = run_monte_carlo(units, GilbertLoss(0.05, 0.2), OPTIONS,
                                trials=80, seed=1)
        assert tally.corrupted_frames > 20
        assert max(tally.corrupted_by_span) >= 3

    def test_span_merge(self):
        units = transfer("gmon", 15_000)
        a = run_monte_carlo(units, IndependentLoss(0.3), OPTIONS, trials=10,
                            seed=1)
        b = run_monte_carlo(units, IndependentLoss(0.3), OPTIONS, trials=10,
                            seed=2)
        merged = a + b
        for span in set(a.corrupted_by_span) | set(b.corrupted_by_span):
            assert merged.corrupted_by_span[span] == (
                a.corrupted_by_span.get(span, 0) + b.corrupted_by_span.get(span, 0)
            )
