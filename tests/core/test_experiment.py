"""Tests for the filesystem-level experiment driver."""

from repro.core.experiment import run_splice_experiment
from repro.protocols.packetizer import ChecksumPlacement, PacketizerConfig
from tests.conftest import make_filesystem


def test_runs_over_all_files(small_mixed_fs):
    result = run_splice_experiment(small_mixed_fs)
    assert result.counters.files == len(small_mixed_fs)
    assert result.counters.total > 0
    assert result.filesystem == small_mixed_fs.name


def test_max_files_truncates(small_mixed_fs):
    result = run_splice_experiment(small_mixed_fs, max_files=2)
    assert result.counters.files == 2


def test_single_packet_files_counted(base_config):
    fs = make_filesystem([("english", 100)])
    result = run_splice_experiment(fs, base_config)
    assert result.counters.packets == 1
    assert result.counters.total == 0


def test_algorithm_label():
    fs = make_filesystem([("english", 600)])
    base = PacketizerConfig()
    assert run_splice_experiment(fs, base).algorithm_label == "tcp"
    assert (
        run_splice_experiment(
            fs, base.with_overrides(placement=ChecksumPlacement.TRAILER)
        ).algorithm_label
        == "tcp-trailer"
    )
    assert (
        run_splice_experiment(
            fs, base.with_overrides(algorithm="fletcher255")
        ).algorithm_label
        == "fletcher255"
    )


def test_deterministic(small_mixed_fs):
    a = run_splice_experiment(small_mixed_fs).counters
    b = run_splice_experiment(small_mixed_fs).counters
    assert a.missed_transport == b.missed_transport
    assert a.total == b.total


def test_per_file_experiment(small_mixed_fs):
    from repro.core.experiment import run_per_file_experiment
    from repro.core import run_splice_experiment

    per_file = run_per_file_experiment(small_mixed_fs)
    assert len(per_file) == len(small_mixed_fs)
    merged = per_file[0][1]
    for _, counters in per_file[1:]:
        merged = merged + counters
    whole = run_splice_experiment(small_mixed_fs).counters
    assert merged.total == whole.total
    assert merged.missed_transport == whole.missed_transport
    assert merged.files == whole.files


def test_per_file_max_files(small_mixed_fs):
    from repro.core.experiment import run_per_file_experiment

    per_file = run_per_file_experiment(small_mixed_fs, max_files=2)
    assert len(per_file) == 2


def test_parallel_workers_identical(small_mixed_fs):
    serial = run_splice_experiment(small_mixed_fs).counters
    parallel = run_splice_experiment(small_mixed_fs, workers=2).counters
    assert serial.total == parallel.total
    assert serial.missed_transport == parallel.missed_transport
    assert serial.identical == parallel.identical
    assert serial.remaining_by_len == parallel.remaining_by_len
    assert serial.files == parallel.files
