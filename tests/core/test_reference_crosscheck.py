"""Cross-validation of the vectorized engine against the reference.

For every splice of several adjacent packet pairs, the vectorized
engine's four verdicts (header_pass / identical / transport / crc32)
must match the byte-at-a-time receiver in
:mod:`repro.core.reference`.  This is the correctness anchor of the
entire reproduction.
"""

import numpy as np
import pytest

from repro.core import reference
from repro.core.engine import EngineOptions, SpliceEngine
from repro.core.enumeration import enumerate_splices
from repro.corpus.generators import generate
from repro.protocols.ftpsim import FileTransferSimulator
from repro.protocols.packetizer import ChecksumPlacement, PacketizerConfig

BASE = PacketizerConfig()

CONFIGS = {
    "tcp-header": BASE,
    "tcp-trailer": BASE.with_overrides(placement=ChecksumPlacement.TRAILER),
    "fletcher255": BASE.with_overrides(algorithm="fletcher255"),
    "fletcher256": BASE.with_overrides(algorithm="fletcher256"),
    "fletcher255-trailer": BASE.with_overrides(
        algorithm="fletcher255", placement=ChecksumPlacement.TRAILER
    ),
    "non-inverted": BASE.with_overrides(invert=False),
    "unfilled-ip": BASE.with_overrides(fill_ip_header=False),
    "mss-100": BASE.with_overrides(mss=100),
}

DATASETS = {
    "gmon": generate("gmon", 1600, 1),
    "zeros": bytes(1200),
    "english": generate("english", 1400, 2),
    "uniform": generate("uniform", 1200, 4),
    "runt-tail": generate("english", 530, 5),
    "tiny-second": generate("uniform", 300, 6),
    "zero-runt": bytes(513),
}


def engine_verdicts(unit1, unit2, options):
    """Per-splice verdicts from the engine's public verdict API."""
    engine = SpliceEngine(options)
    enum, verdicts = engine.splice_verdicts(
        unit1.frame.cells()[None],
        unit2.frame.cells()[None],
        len(unit1.packet.ip_packet),
        len(unit2.packet.ip_packet),
    )
    return enum, {
        key: verdicts[key][0]
        for key in ("header_pass", "transport", "crc32", "identical")
    }


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("dataset_name", sorted(DATASETS))
def test_engine_matches_reference(config_name, dataset_name):
    config = CONFIGS[config_name]
    data = DATASETS[dataset_name]
    options = EngineOptions.from_packetizer(config, aux_crcs=())
    units = FileTransferSimulator(config).transfer(data)
    assert len(units) >= 2, "dataset must produce at least one pair"
    checked = 0
    for unit1, unit2 in zip(units, units[1:]):
        enum, verdicts = engine_verdicts(unit1, unit2, options)
        if enum.splices == 0:
            continue
        for row in range(enum.splices):
            expected = reference.judge_splice(
                unit1.frame, unit2.frame, enum.selection[row], options
            )
            got = {key: bool(verdicts[key][row]) for key in expected}
            assert got == expected, "splice %d: %r != %r" % (row, got, expected)
            checked += 1
    assert checked > 0
