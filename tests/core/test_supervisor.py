"""SupervisedPool: the degradation ladder, and RunHealth bookkeeping."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.supervisor import RunAborted, RunHealth, SupervisedPool

# ---------------------------------------------------------------------------
# module-level workers (picklable for the process pool)
# ---------------------------------------------------------------------------


def double(payload):
    return payload * 2


def obey(payload):
    """Payload ``(directive, value)``: fault on demand, else return value."""
    directive, value = payload
    if directive == "crash":
        os._exit(13)
    if directive == "raise":
        raise ValueError("injected")
    return value * 10


def always_fails(payload):
    raise RuntimeError("hopeless")


def scripted_prepare(script):
    """Fault jobs per ``script[(index, attempt)]``; clean otherwise.

    ``attempt is None`` (the fallback rung) is always clean — the
    contract :class:`SupervisedPool` documents for its prepare hook.
    """

    def prepare(index, attempt, job):
        if attempt is None:
            return (None, job)
        return (script.get((index, attempt)), job)

    return prepare


# ---------------------------------------------------------------------------
# happy paths
# ---------------------------------------------------------------------------


class TestCleanRuns:
    def test_sequential_map_in_order(self):
        pool = SupervisedPool(double, workers=None)
        assert pool.map([1, 2, 3]) == [2, 4, 6]
        assert not pool.health.eventful

    def test_single_job_stays_local_even_with_workers(self):
        pool = SupervisedPool(double, workers=4)
        assert pool.map([21]) == [42]

    def test_pooled_map_matches_sequential(self):
        jobs = list(range(12))
        assert SupervisedPool(double, workers=2).map(jobs) == [
            j * 2 for j in jobs
        ]

    def test_run_yields_index_result_pairs(self):
        seen = dict(SupervisedPool(double, workers=None).run([5, 6]))
        assert seen == {0: 10, 1: 12}


# ---------------------------------------------------------------------------
# the ladder, rung by rung
# ---------------------------------------------------------------------------


class TestRetries:
    def test_sequential_retry_recovers(self):
        # Job 0 raises on attempt 0 only; the retry succeeds.
        prepare = scripted_prepare({(0, 0): "raise"})
        pool = SupervisedPool(obey, workers=None, prepare=prepare)
        assert pool.map([1, 2]) == [10, 20]
        assert pool.health.retries == 1
        assert pool.health.fallbacks == 0

    def test_pooled_retry_recovers(self):
        prepare = scripted_prepare({(1, 0): "raise"})
        pool = SupervisedPool(
            obey, workers=2, prepare=prepare, backoff_base=0.001
        )
        assert pool.map([1, 2, 3, 4]) == [10, 20, 30, 40]
        assert pool.health.retries == 1

    def test_fallback_after_exhausted_retries(self):
        # Job 0 raises on every pooled/sequential attempt; only the
        # fault-free fallback rung (attempt None) succeeds.
        script = {(0, a): "raise" for a in range(10)}
        pool = SupervisedPool(
            obey, workers=None, prepare=scripted_prepare(script),
            max_retries=2, backoff_base=0.001,
        )
        assert pool.map([7]) == [70]
        assert pool.health.retries == 2
        assert pool.health.fallbacks == 1

    def test_run_aborted_when_even_fallback_fails(self):
        pool = SupervisedPool(
            always_fails, workers=None, max_retries=1, backoff_base=0.001
        )
        with pytest.raises(RunAborted, match="job 0 failed"):
            pool.map(["x"])


class TestPoolRecovery:
    def test_worker_crash_condemns_pool_and_recovers(self):
        # Job 2 hard-exits its worker on attempt 0: BrokenProcessPool.
        prepare = scripted_prepare({(2, 0): "crash"})
        pool = SupervisedPool(
            obey, workers=2, prepare=prepare, backoff_base=0.001
        )
        assert pool.map([1, 2, 3, 4, 5]) == [10, 20, 30, 40, 50]
        assert pool.health.broken_pools >= 1
        assert pool.health.pool_restarts >= 1
        assert pool.health.retries >= 1

    def test_restart_budget_exhaustion_drains_in_process(self):
        # Every attempt of every job crashes its worker; the pool
        # restart budget runs out and the drain completes in-process.
        script = {(i, a): "crash" for i in range(4) for a in range(10)}
        pool = SupervisedPool(
            obey, workers=2, prepare=scripted_prepare(script),
            max_pool_restarts=1, backoff_base=0.001,
        )
        assert pool.map([1, 2, 3, 4]) == [10, 20, 30, 40]
        assert pool.health.fallbacks >= 1
        assert any(
            "pool restart budget exhausted" in note
            for note in pool.health.degradations
        )

    def test_timeout_condemns_pool(self):
        # A stalled worker (sleeps forever relative to the timeout).
        prepare = scripted_prepare({(0, 0): "stall"})

        pool = SupervisedPool(
            stall_or_value, workers=2, prepare=prepare,
            timeout=0.3, backoff_base=0.001,
        )
        assert pool.map([1, 2, 3]) == [100, 200, 300]
        assert pool.health.timeouts >= 1
        assert pool.health.pool_restarts >= 1


def stall_or_value(payload):
    directive, value = payload
    if directive == "stall":
        import time

        time.sleep(3)  # >> the supervisor timeout, << any test timeout
    return value * 100


class TestBitIdenticalResults:
    def test_chaotic_run_matches_clean_run(self):
        jobs = list(range(10))
        clean = SupervisedPool(obey, workers=None).map(
            [(None, j) for j in jobs]
        )
        # Same jobs under scripted harm (note: obey takes the payload
        # the prepare hook built, so wrap jobs for the chaotic pool).
        script = {(0, 0): "raise", (3, 0): "crash", (7, 0): "raise"}
        chaotic = SupervisedPool(
            obey, workers=2, prepare=scripted_prepare(script),
            backoff_base=0.001,
        ).map(jobs)
        assert chaotic == clean
        assert chaotic == [j * 10 for j in jobs]


# ---------------------------------------------------------------------------
# RunHealth
# ---------------------------------------------------------------------------


class TestRunHealth:
    def test_clean_record_is_uneventful(self):
        health = RunHealth()
        assert not health.eventful
        assert health.summary() == "clean"

    def test_json_round_trip(self):
        health = RunHealth(retries=2, broken_pools=1, storeless=True)
        health.degrade("went store-less")
        clone = RunHealth.from_json(health.to_json())
        assert clone == health
        assert json.loads(health.to_json())["retries"] == 2

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown RunHealth fields"):
            RunHealth.from_dict({"retries": 1, "explosions": 9})

    def test_merge_sums_counters_and_unions_notes(self):
        a = RunHealth(retries=1, evictions=2)
        a.degrade("note-a")
        b = RunHealth(retries=3, storeless=True)
        b.degrade("note-a")
        b.degrade("note-b")
        a.merge(b)
        assert a.retries == 4 and a.evictions == 2 and a.storeless
        assert a.degradations == ["note-a", "note-b"]

    def test_degrade_is_idempotent(self):
        health = RunHealth()
        health.degrade("same note")
        health.degrade("same note")
        assert health.degradations == ["same note"]
        assert health.eventful

    def test_summary_pluralizes(self):
        assert RunHealth(retries=1).summary() == "1 retry"
        assert RunHealth(retries=2).summary() == "2 retries"
        assert "store-less mode" in RunHealth(storeless=True).summary()

    def test_render_lists_degradations(self):
        health = RunHealth(retries=1)
        health.degrade("drained in-process")
        text = health.render()
        assert "1 retry" in text and "drained in-process" in text
