"""Tests for the fragmentation-and-reassembly error model."""

import pytest

from repro.core.fragsplice import (
    FragmentSpliceCounters,
    run_fragment_splice_experiment,
)
from repro.protocols.packetizer import PacketizerConfig
from tests.conftest import make_filesystem


class TestCounters:
    def test_rates_and_addition(self):
        a = FragmentSpliceCounters(pairs=1, total=10, identical=2, remaining=8,
                                   missed={"tcp": 2})
        b = FragmentSpliceCounters(pairs=1, total=10, identical=0, remaining=10,
                                   missed={"tcp": 1})
        merged = a + b
        assert merged.total == 20
        assert merged.remaining == 18
        assert merged.missed["tcp"] == 3
        assert merged.miss_rate("tcp") == pytest.approx(100.0 * 3 / 18)
        assert merged.miss_rate("fletcher255") == 0.0

    def test_empty_rate(self):
        assert FragmentSpliceCounters().miss_rate("tcp") == 0.0


class TestExperiment:
    @pytest.fixture(scope="class")
    def results(self):
        fs = make_filesystem([("gmon", 12_000), ("english", 8_000)])
        return run_fragment_splice_experiment(fs, PacketizerConfig(), mtu=92)

    def test_all_algorithms_judged_same_splices(self, results):
        totals = {c.total for c in results.values()}
        remainings = {c.remaining for c in results.values()}
        assert len(totals) == 1 and totals.pop() > 0
        assert len(remainings) == 1

    def test_accounting(self, results):
        for counters in results.values():
            assert counters.total == counters.identical + counters.remaining
            assert counters.missed.get(
                next(iter(counters.missed), "tcp"), 0
            ) <= counters.remaining

    def test_tcp_misses_on_zero_heavy_data(self, results):
        # Same-offset substitutions of congruent fragments: gmon data
        # guarantees observable misses.
        assert results["tcp"].miss_rate("tcp") > 0.5

    def test_fletcher_loses_coloring_advantage(self, results):
        # Substituted fragments keep their byte offsets, so Fletcher's
        # positional term cannot help the way it does on cell splices:
        # its miss rate is within a small factor of TCP's, not the
        # 10-100x advantage of the shifted model.
        tcp = results["tcp"].miss_rate("tcp")
        f256 = results["fletcher256"].miss_rate("fletcher256")
        assert f256 > tcp / 5

    def test_mismatched_lengths_skipped(self):
        # Files one packet long produce no pairs; runt tails mismatch.
        fs = make_filesystem([("english", 300)])
        results = run_fragment_splice_experiment(fs, PacketizerConfig(), mtu=92)
        assert results["tcp"].total == 0

    def test_max_positions_cap(self):
        fs = make_filesystem([("gmon", 3_000)])
        results = run_fragment_splice_experiment(
            fs, PacketizerConfig(), mtu=60, max_positions=4,
            algorithms=("tcp",),
        )
        counters = results["tcp"]
        # 2^4 - 2 = 14 substitutions per pair at most.
        assert counters.total <= 14 * counters.pairs
