"""Hypothesis fuzzing of the engine against the reference receiver.

The parametrized cross-check covers curated datasets; this file lets
hypothesis hunt for adversarial payloads -- crafted word patterns,
runt boundaries, near-identical packets -- and verifies every splice
verdict against the byte-at-a-time receiver.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import reference
from repro.core.engine import EngineOptions, SpliceEngine
from repro.protocols.ftpsim import FileTransferSimulator
from repro.protocols.packetizer import ChecksumPlacement, PacketizerConfig

# Small MSS keeps the per-example splice count (and runtime) low while
# still exercising multi-cell packets: mss 64 -> 3-cell frames.
_CONFIGS = [
    PacketizerConfig(mss=64),
    PacketizerConfig(mss=64, placement=ChecksumPlacement.TRAILER),
    PacketizerConfig(mss=64, algorithm="fletcher255"),
]

# Payload strategies biased toward the structures that break sums:
# repeated words, zero runs, 0xFF runs, and near-duplicate halves.
_payloads = st.one_of(
    st.binary(min_size=65, max_size=200),
    st.builds(
        lambda word, reps, tail: word * reps + tail,
        st.binary(min_size=2, max_size=4),
        st.integers(20, 60),
        st.binary(max_size=10),
    ),
    st.builds(
        lambda a, filler: a + filler + a,
        st.binary(min_size=30, max_size=70),
        st.sampled_from([b"\x00" * 40, b"\xff" * 40, b"\x00\xff" * 20]),
    ),
)


def _verdict_mismatches(data, config):
    options = EngineOptions.from_packetizer(config, aux_crcs=())
    engine = SpliceEngine(options)
    units = FileTransferSimulator(config).transfer(data)
    mismatches = []
    for first, second in zip(units, units[1:]):
        enum, verdicts = engine.splice_verdicts(
            first.frame.cells()[None],
            second.frame.cells()[None],
            len(first.packet.ip_packet),
            len(second.packet.ip_packet),
        )
        for row in range(enum.splices):
            expected = reference.judge_splice(
                first.frame, second.frame, enum.selection[row], options
            )
            got = {key: bool(verdicts[key][0][row]) for key in expected}
            if got != expected:
                mismatches.append((row, got, expected))
    return mismatches


@given(data=_payloads)
@settings(max_examples=25, deadline=None)
def test_engine_matches_reference_tcp(data):
    assert _verdict_mismatches(data, _CONFIGS[0]) == []


@given(data=_payloads)
@settings(max_examples=15, deadline=None)
def test_engine_matches_reference_trailer(data):
    assert _verdict_mismatches(data, _CONFIGS[1]) == []


@given(data=_payloads)
@settings(max_examples=15, deadline=None)
def test_engine_matches_reference_fletcher(data):
    assert _verdict_mismatches(data, _CONFIGS[2]) == []
