"""Tests for the alternative error models (Section 2 / 7 guarantees)."""

import numpy as np
import pytest

from repro.core.biterrors import (
    BitFlips,
    BurstError,
    GarbageRun,
    RunOverwrite,
    WordSwap,
    error_detection_experiment,
)
from repro.protocols.packetizer import PacketizerConfig
from tests.conftest import make_filesystem


@pytest.fixture
def rng():
    return np.random.default_rng(1)


class TestInjectors:
    def test_bitflips_change_exactly_n_bits(self, rng):
        buf = bytearray(64)
        assert BitFlips(3).apply(buf, 0, 64, rng)
        assert sum(bin(b).count("1") for b in buf) == 3

    def test_bitflips_respect_region(self, rng):
        buf = bytearray(64)
        BitFlips(5).apply(buf, 16, 32, rng)
        assert not any(buf[:16]) and not any(buf[32:])

    def test_bitflips_too_small_region(self, rng):
        assert not BitFlips(9).apply(bytearray(64), 0, 1, rng)

    def test_burst_endpoints_flipped(self, rng):
        for bits in (1, 2, 5, 16, 31):
            buf = bytearray(64)
            assert BurstError(bits).apply(buf, 0, 64, rng)
            positions = [
                8 * i + (7 - b) for i in range(64) for b in range(8)
                if buf[i] >> b & 1
            ]
            assert positions
            assert max(positions) - min(positions) == bits - 1

    def test_wordswap_preserves_internet_sum(self, rng):
        from repro.checksums.internet import internet_checksum

        buf = bytearray(rng.integers(0, 256, size=64).astype(np.uint8).tobytes())
        original = bytes(buf)
        assert WordSwap().apply(buf, 0, 64, rng)
        assert bytes(buf) != original
        assert internet_checksum(buf) == internet_checksum(original)

    def test_wordswap_gives_up_on_constant_data(self, rng):
        buf = bytearray(b"\x11\x22" * 8)
        assert not WordSwap().apply(buf, 0, 16, rng)

    def test_run_overwrite(self, rng):
        buf = bytearray(rng.integers(1, 255, size=64).astype(np.uint8).tobytes())
        assert RunOverwrite(16, 0xFF).apply(buf, 0, 64, rng)
        assert b"\xff" * 16 in bytes(buf)

    def test_run_overwrite_noop_on_existing_run(self, rng):
        assert not RunOverwrite(16, 0x00).apply(bytearray(16), 0, 16, rng)

    def test_garbage_changes_data(self, rng):
        buf = bytearray(64)
        assert GarbageRun(32).apply(buf, 0, 64, rng)
        assert any(buf)

    @pytest.mark.parametrize("factory", [
        lambda: BitFlips(0), lambda: BurstError(0),
        lambda: RunOverwrite(0), lambda: RunOverwrite(4, 7),
        lambda: GarbageRun(0),
    ])
    def test_validation(self, factory):
        with pytest.raises(ValueError):
            factory()


class TestDetectionExperiment:
    @pytest.fixture(scope="class")
    def rates(self):
        fs = make_filesystem([("english", 20_000), ("executable", 10_000)])
        injectors = [BitFlips(1), BurstError(15), BurstError(16), WordSwap(),
                     GarbageRun(48)]
        return error_detection_experiment(
            fs, PacketizerConfig(), injectors, trials_per_packet=3, seed=2
        )

    def test_single_bit_always_detected(self, rates):
        row = rates["1-bit flip"]
        assert row.trials > 100
        assert row.transport_rate() == 100.0
        assert row.crc32_rate() == 100.0

    def test_bursts_up_to_16_always_detected_by_tcp(self, rates):
        # Plummer's guarantee: all bursts of 15 bits, and 16-bit bursts
        # except the 0x0000 <-> 0xFFFF swap (absent at this scale).
        assert rates["15-bit burst"].transport_rate() == 100.0
        assert rates["16-bit burst"].transport_rate() >= 99.9

    def test_word_swap_invisible_to_tcp_but_not_crc(self, rates):
        row = rates["16-bit word swap"]
        assert row.trials > 100
        assert row.transport_rate() == 0.0
        assert row.crc32_rate() == 100.0

    def test_garbage_detected_at_near_certainty(self, rates):
        assert rates["48-byte garbage"].transport_rate() > 99.0

    def test_crc32_catches_everything_at_this_scale(self, rates):
        for row in rates.values():
            assert row.crc32_rate() == 100.0

    def test_fletcher_sees_most_word_swaps(self):
        fs = make_filesystem([("english", 15_000)])
        rows = error_detection_experiment(
            fs, PacketizerConfig(algorithm="fletcher256"), [WordSwap()],
            trials_per_packet=4, seed=3,
        )
        assert rows["16-bit word swap"].transport_rate() > 90.0

    def test_max_packets_limit(self):
        fs = make_filesystem([("english", 20_000)])
        rows = error_detection_experiment(
            fs, PacketizerConfig(), [BitFlips(1)], trials_per_packet=1,
            seed=1, max_packets=5,
        )
        assert rows["1-bit flip"].trials <= 5
