"""Behavioural tests for the splice engine and its counters."""

import numpy as np
import pytest

from repro.core.engine import EngineOptions, SpliceEngine
from repro.core.results import SpliceCounters
from repro.corpus.generators import generate
from repro.protocols.ftpsim import FileTransferSimulator
from repro.protocols.packetizer import ChecksumPlacement, PacketizerConfig


def run_stream(data, config=None, **option_overrides):
    config = config or PacketizerConfig()
    options = EngineOptions.from_packetizer(config, **option_overrides)
    units = FileTransferSimulator(config).transfer(data)
    return SpliceEngine(options).evaluate_stream(units)


class TestCounterConsistency:
    def test_partition_of_total(self):
        counters = run_stream(generate("gmon", 4000, 1))
        assert counters.sanity_check()
        assert counters.total > 0
        assert (
            counters.total
            == counters.caught_by_header + counters.identical + counters.remaining
        )

    def test_expected_totals_for_uniform_packets(self):
        # 4000 bytes -> 16 packets -> 15 pairs x 923 splices.
        counters = run_stream(generate("uniform", 4096, 1))
        assert counters.pairs == 15
        assert counters.total == 15 * 923

    def test_by_length_breakdown_sums(self):
        counters = run_stream(generate("english", 4096, 1))
        assert sum(counters.remaining_by_len.values()) == counters.remaining
        assert set(counters.remaining_by_len) <= set(range(1, 8))


class TestBatchingEquivalence:
    def test_batched_equals_pairwise(self):
        data = generate("gmon", 6000, 3)
        config = PacketizerConfig()
        options = EngineOptions.from_packetizer(config)
        units = FileTransferSimulator(config).transfer(data)
        engine = SpliceEngine(options)

        whole = engine.evaluate_stream(units)

        accumulated = SpliceCounters()
        accumulated.packets = len(units)
        for first, second in zip(units, units[1:]):
            accumulated += engine.evaluate_batch(
                first.frame.cells()[None],
                second.frame.cells()[None],
                len(first.packet.ip_packet),
                len(second.packet.ip_packet),
            )
        for field in ("total", "caught_by_header", "identical", "remaining",
                      "missed_transport", "missed_crc32"):
            assert getattr(whole, field) == getattr(accumulated, field), field

    def test_small_batch_elements_still_exact(self):
        data = generate("gmon", 6000, 3)
        config = PacketizerConfig()
        units = FileTransferSimulator(config).transfer(data)
        base = SpliceEngine(EngineOptions.from_packetizer(config))
        tiny = SpliceEngine(
            EngineOptions.from_packetizer(config, batch_elements=1000)
        )
        a = base.evaluate_stream(units)
        b = tiny.evaluate_stream(units)
        assert a.missed_transport == b.missed_transport
        assert a.total == b.total


class TestKnownSplices:
    def test_all_zero_data_floods_identical(self):
        # With an all-zero file, swapping one all-zero cell for another
        # yields identical packets, never checksum misses.
        counters = run_stream(bytes(2048))
        assert counters.identical > 0
        assert counters.missed_transport == 0

    def test_crafted_congruent_miss(self):
        # Two packets whose payloads are word-swapped copies: dropping
        # one data cell and inserting the matching swapped cell keeps
        # the TCP sum, so at least one splice must be missed.
        payload = bytearray(generate("uniform", 512, 9))
        payload[256:512] = payload[0:256]
        # Swap two words inside the second packet's first data cell
        # region so the data differs but the sum is unchanged.
        payload[260:262], payload[262:264] = payload[262:264], payload[260:262]
        counters = run_stream(bytes(payload))
        assert counters.missed_transport > 0
        assert counters.missed_crc32 == 0  # CRC-32 sees the reordering

    def test_second_header_splices_tracked(self):
        counters = run_stream(generate("english", 4096, 1))
        assert 0 < counters.remaining_with_hdr2 < counters.remaining
        assert counters.missed_with_hdr2 <= counters.remaining_with_hdr2


class TestAuxCrcs:
    def test_aux_rate_near_uniform(self):
        counters = run_stream(generate("gmon", 60_000, 3))
        # gmon data defeats the TCP sum but not a 16-bit CRC: the aux
        # CRC-16 miss count stays near remaining / 2^16.
        expectation = counters.remaining / 65536
        assert counters.missed_aux["crc16-ccitt"] <= max(10 * expectation, 10)
        assert counters.missed_transport > 100 * max(expectation, 1)

    def test_unknown_aux_rejected(self):
        with pytest.raises((ValueError, KeyError)):
            SpliceEngine(EngineOptions(aux_crcs=("internet",)))

    def test_aux_disabled(self):
        counters = run_stream(bytes(1024), aux_crcs=())
        assert counters.missed_aux == {}


class TestOptions:
    def test_from_packetizer_mirrors_config(self):
        config = PacketizerConfig(
            algorithm="fletcher255",
            placement=ChecksumPlacement.TRAILER,
            invert=False,
        )
        options = EngineOptions.from_packetizer(config)
        assert options.algorithm == "fletcher255"
        assert options.placement is ChecksumPlacement.TRAILER
        assert options.invert is False
        assert options.require_ip_checksum is True
        assert options.legacy_coverage is False

    def test_from_packetizer_legacy_mode(self):
        config = PacketizerConfig(fill_ip_header=False)
        options = EngineOptions.from_packetizer(config)
        assert options.require_ip_checksum is False
        assert options.legacy_coverage is True

    def test_unsupported_algorithm(self):
        with pytest.raises(ValueError):
            SpliceEngine(EngineOptions(algorithm="md5"))


class TestCountersArithmetic:
    def test_add_merges_everything(self):
        a = run_stream(generate("gmon", 3000, 1))
        b = run_stream(generate("english", 3000, 2))
        merged = a + b
        assert merged.total == a.total + b.total
        assert merged.missed_transport == a.missed_transport + b.missed_transport
        assert merged.remaining_by_len[4] == (
            a.remaining_by_len[4] + b.remaining_by_len[4]
        )
        assert merged.sanity_check()

    def test_rates_of_empty_counters(self):
        empty = SpliceCounters()
        assert empty.miss_rate_transport == 0.0
        assert empty.caught_by_header_pct == 0.0
        assert empty.effective_bits == float("inf")
        assert empty.sanity_check()


class TestPerLengthAttribution:
    def test_by_length_matches_reference(self):
        # Brute-force the per-substitution-length accounting on one
        # pair: group reference verdicts by the enumeration's k and
        # compare with the engine's counters.
        from collections import Counter

        from repro.core import reference
        from repro.core.enumeration import enumerate_splices

        config = PacketizerConfig()
        options = EngineOptions.from_packetizer(config, aux_crcs=())
        units = FileTransferSimulator(config).transfer(generate("gmon", 600, 4))
        first, second = units[0], units[1]
        engine = SpliceEngine(options)
        counters = engine.evaluate_batch(
            first.frame.cells()[None], second.frame.cells()[None],
            len(first.packet.ip_packet), len(second.packet.ip_packet),
        )

        enum = enumerate_splices(first.frame.cell_count, second.frame.cell_count)
        expected_remaining = Counter()
        expected_missed = Counter()
        for row in range(enum.splices):
            verdict = reference.judge_splice(
                first.frame, second.frame, enum.selection[row], options
            )
            if verdict["header_pass"] and not verdict["identical"]:
                k = int(enum.substitution_len[row])
                expected_remaining[k] += 1
                if verdict["transport"]:
                    expected_missed[k] += 1
        assert counters.remaining_by_len == expected_remaining
        assert counters.missed_by_len == +expected_missed
