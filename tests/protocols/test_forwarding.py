"""Tests for incremental checksum maintenance (RFC 1141/1624)."""

import pytest

from repro.checksums.internet import internet_checksum_field
from repro.protocols.forwarding import (
    decrement_ttl,
    rewrite_addresses,
    verify_ip_header,
)
from repro.protocols.ip import parse_ipv4_header
from repro.protocols.packetizer import Packetizer, PacketizerConfig
from repro.protocols.tcp import verify_tcp_checksum


def make_packet(payload=b"forwarding payload bytes"):
    return Packetizer(PacketizerConfig()).packetize(payload)[0].ip_packet


class TestTTLDecrement:
    def test_header_still_verifies(self):
        packet = make_packet()
        forwarded = decrement_ttl(packet)
        assert verify_ip_header(forwarded)
        assert parse_ipv4_header(forwarded).ttl == 63

    def test_matches_recompute_congruence(self):
        packet = make_packet()
        forwarded = decrement_ttl(packet)
        recomputed = bytearray(forwarded)
        recomputed[10:12] = b"\x00\x00"
        field = internet_checksum_field(recomputed[:20])
        stored = int.from_bytes(forwarded[10:12], "big")
        # Congruent mod 0xFFFF (both zeros allowed), and both verify.
        assert stored % 0xFFFF == field % 0xFFFF

    def test_chain_of_hops(self):
        packet = make_packet()
        for _ in range(63):
            packet = decrement_ttl(packet)
            assert verify_ip_header(packet)
        assert parse_ipv4_header(packet).ttl == 1

    def test_expired_ttl_rejected(self):
        packet = make_packet()
        for _ in range(64):
            packet = decrement_ttl(packet)
        with pytest.raises(ValueError, match="TTL"):
            decrement_ttl(packet)

    def test_payload_untouched(self):
        packet = make_packet()
        forwarded = decrement_ttl(packet)
        assert forwarded[20:] == packet[20:]


class TestNATRewrite:
    def test_both_checksums_updated(self):
        packet = make_packet()
        rewritten = rewrite_addresses(packet, new_src="203.0.113.7",
                                      new_dst="198.51.100.9")
        assert verify_ip_header(rewritten)
        assert verify_tcp_checksum("203.0.113.7", "198.51.100.9",
                                   rewritten[20:])
        header = parse_ipv4_header(rewritten)
        assert header.src == 0xCB007107
        assert header.dst == 0xC6336409

    def test_src_only(self):
        packet = make_packet()
        rewritten = rewrite_addresses(packet, new_src="1.2.3.4")
        config = PacketizerConfig()
        assert verify_ip_header(rewritten)
        assert verify_tcp_checksum("1.2.3.4", config.dst, rewritten[20:])

    def test_payload_and_ports_untouched(self):
        packet = make_packet()
        rewritten = rewrite_addresses(packet, new_dst="8.8.8.8")
        assert rewritten[20:24] == packet[20:24]  # ports
        assert rewritten[40:] == packet[40:]  # payload

    def test_non_tcp_rejected(self):
        packet = bytearray(make_packet())
        packet[9] = 17  # claim UDP
        with pytest.raises(ValueError, match="TCP"):
            rewrite_addresses(bytes(packet), new_src="1.2.3.4")

    def test_roundtrip_rewrite(self):
        config = PacketizerConfig()
        packet = make_packet()
        away = rewrite_addresses(packet, new_src="9.9.9.9")
        back = rewrite_addresses(away, new_src=config.src)
        assert verify_ip_header(back)
        assert verify_tcp_checksum(config.src, config.dst, back[20:])
        assert back[12:20] == packet[12:20]
