"""Tests for TCP options and the RFC 1146 alternate-checksum request."""

import pytest

from repro.protocols.tcp import parse_tcp_header
from repro.protocols.tcpoptions import (
    ALTERNATE_CHECKSUM_ALGORITHMS,
    OPT_ALTERNATE_CHECKSUM_REQUEST,
    OPT_MSS,
    OPT_NOP,
    TCPOption,
    alternate_checksum_request,
    build_tcp_header_with_options,
    negotiated_algorithm,
    parse_tcp_options,
)


class TestOptionEncoding:
    def test_nop_and_end_single_byte(self):
        assert TCPOption(OPT_NOP).encode() == b"\x01"
        assert TCPOption(0).encode() == b"\x00"

    def test_data_option(self):
        option = TCPOption(OPT_MSS, (1460).to_bytes(2, "big"))
        assert option.encode() == b"\x02\x04\x05\xb4"
        assert option.encoded_length() == 4

    def test_oversized_rejected(self):
        with pytest.raises(ValueError):
            TCPOption(99, bytes(300)).encode()


class TestHeaderWithOptions:
    def test_offset_and_padding(self):
        header = build_tcp_header_with_options(
            1, 2, 100, 0, [alternate_checksum_request("fletcher255")]
        )
        assert len(header) % 4 == 0
        parsed = parse_tcp_header(header)
        assert parsed.data_offset == len(header) // 4
        assert parsed.data_offset > 5

    def test_roundtrip(self):
        options = [
            TCPOption(OPT_MSS, (536).to_bytes(2, "big")),
            alternate_checksum_request("fletcher256"),
        ]
        header = build_tcp_header_with_options(20, 21, 1, 0, options)
        parsed = parse_tcp_options(header)
        assert parsed == options

    def test_option_space_limit(self):
        with pytest.raises(ValueError, match="option space"):
            build_tcp_header_with_options(
                1, 2, 0, 0, [TCPOption(99, bytes(41))]
            )

    def test_no_options_is_plain_header(self):
        header = build_tcp_header_with_options(1, 2, 0, 0, [])
        assert len(header) == 20
        assert parse_tcp_options(header) == []


class TestParsing:
    def test_nop_skipped_end_stops(self):
        header = build_tcp_header_with_options(
            1, 2, 0, 0, [TCPOption(OPT_NOP), alternate_checksum_request("tcp")]
        )
        options = parse_tcp_options(header)
        assert [o.kind for o in options] == [OPT_ALTERNATE_CHECKSUM_REQUEST]

    def test_bad_length_rejected(self):
        header = bytearray(build_tcp_header_with_options(
            1, 2, 0, 0, [TCPOption(OPT_MSS, b"\x01\x02")]
        ))
        header[21] = 1  # impossible option length
        with pytest.raises(ValueError, match="length"):
            parse_tcp_options(bytes(header))

    def test_truncated_option(self):
        header = bytearray(build_tcp_header_with_options(
            1, 2, 0, 0, [TCPOption(OPT_MSS, b"\x01\x02")]
        ))
        header[20:24] = b"\x02\x08\x00\x00"  # claims 8 bytes, only 4 present
        with pytest.raises(ValueError):
            parse_tcp_options(bytes(header))

    def test_bad_data_offset(self):
        header = bytearray(build_tcp_header_with_options(1, 2, 0, 0, []))
        header[12] = 0x40  # offset 4 < minimum 5
        with pytest.raises(ValueError, match="offset"):
            parse_tcp_options(bytes(header))


class TestAlternateChecksum:
    def test_request_encodes_algorithm_number(self):
        option = alternate_checksum_request("fletcher255")
        assert option.kind == OPT_ALTERNATE_CHECKSUM_REQUEST
        assert option.data == b"\x01"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            alternate_checksum_request("md5")

    @pytest.mark.parametrize("algorithm", ["tcp", "fletcher255", "fletcher256"])
    def test_negotiation_roundtrip(self, algorithm):
        header = build_tcp_header_with_options(
            1, 2, 0, 0, [alternate_checksum_request(algorithm)]
        )
        assert negotiated_algorithm(header) == algorithm

    def test_default_when_absent(self):
        header = build_tcp_header_with_options(1, 2, 0, 0, [])
        assert negotiated_algorithm(header) == "tcp"

    def test_algorithm_table(self):
        assert ALTERNATE_CHECKSUM_ALGORITHMS[1] == "fletcher255"
