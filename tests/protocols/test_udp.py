"""Tests for the UDP substrate and its two-zeros semantics."""

import pytest

from repro.protocols.udp import (
    UDP_HEADER_LEN,
    build_udp_datagram,
    parse_udp_header,
    verify_udp_datagram,
)

SRC, DST = "10.0.0.1", "10.0.0.2"


class TestBuildAndVerify:
    def test_roundtrip(self):
        datagram = build_udp_datagram(SRC, DST, 53, 1234, b"query bytes")
        header = parse_udp_header(datagram)
        assert header.sport == 53 and header.dport == 1234
        assert header.length == len(datagram)
        assert verify_udp_datagram(SRC, DST, datagram)

    def test_detects_payload_corruption(self):
        datagram = bytearray(build_udp_datagram(SRC, DST, 1, 2, b"payload"))
        datagram[-1] ^= 0x01
        assert not verify_udp_datagram(SRC, DST, bytes(datagram))

    def test_detects_wrong_addresses(self):
        datagram = build_udp_datagram(SRC, DST, 1, 2, b"payload")
        assert not verify_udp_datagram(SRC, "10.0.0.9", datagram)

    def test_detects_truncation(self):
        datagram = build_udp_datagram(SRC, DST, 1, 2, b"payload")
        assert not verify_udp_datagram(SRC, DST, datagram[:-1])

    def test_oversize_rejected(self):
        with pytest.raises(ValueError):
            build_udp_datagram(SRC, DST, 1, 2, bytes(65536))

    def test_parse_short_buffer(self):
        with pytest.raises(ValueError):
            parse_udp_header(b"\x00\x01")


class TestTwoZeros:
    def test_no_checksum_sentinel_accepted(self):
        datagram = build_udp_datagram(SRC, DST, 1, 2, b"data", with_checksum=False)
        assert parse_udp_header(datagram).checksum == 0
        assert not parse_udp_header(datagram).checksum_present
        assert verify_udp_datagram(SRC, DST, datagram)
        # ... even with corrupted payload: no checksum, no protection.
        corrupted = bytearray(datagram)
        corrupted[-1] ^= 0xFF
        assert verify_udp_datagram(SRC, DST, bytes(corrupted))

    def test_computed_zero_sent_as_ffff(self):
        # Find a payload whose checksum computes to zero by solving:
        # build with a two-byte slack field and adjust it.
        from repro.checksums.internet import fold_carries, word_sums
        from repro.protocols.tcp import pseudo_header_word_sum

        payload = bytearray(b"\x00\x00zz")
        base = build_udp_datagram(SRC, DST, 7, 9, bytes(payload))
        # Adjust payload so the sum-with-zero-field is 0xFFFF, making
        # the complement 0x0000.
        header = base[:6] + b"\x00\x00"
        total = pseudo_header_word_sum(SRC, DST, len(base), protocol=17)
        total += word_sums(header + bytes(payload))
        need = (0xFFFF - int(fold_carries(total - 0x7A7A))) & 0xFFFF
        payload[2:4] = need.to_bytes(2, "big")
        datagram = build_udp_datagram(SRC, DST, 7, 9, bytes(payload))
        assert parse_udp_header(datagram).checksum == 0xFFFF
        assert verify_udp_datagram(SRC, DST, datagram)

    def test_header_length_field(self):
        datagram = build_udp_datagram(SRC, DST, 1, 2, b"12345")
        assert parse_udp_header(datagram).length == UDP_HEADER_LEN + 5
