"""Tests for the simulated FTP transfer."""

from repro.protocols.ftpsim import FileTransferSimulator
from repro.protocols.packetizer import PacketizerConfig


def test_transfer_frames_every_packet():
    sim = FileTransferSimulator()
    units = sim.transfer(bytes(700))
    assert len(units) == 3
    for unit in units:
        assert unit.frame.payload == unit.packet.ip_packet
        assert unit.cells.shape[1] == 48


def test_adjacent_pairs():
    sim = FileTransferSimulator()
    pairs = list(sim.adjacent_pairs(bytes(1100)))
    assert len(pairs) == 4
    for first, second in pairs:
        assert second.packet.ipid == first.packet.ipid + 1
        assert second.packet.seq == first.packet.seq + len(first.packet.payload)


def test_single_packet_file_has_no_pairs():
    sim = FileTransferSimulator()
    assert list(sim.adjacent_pairs(b"tiny")) == []


def test_config_passthrough():
    config = PacketizerConfig(mss=128)
    sim = FileTransferSimulator(config)
    assert sim.config.mss == 128
    units = sim.transfer(bytes(300))
    assert [len(u.packet.payload) for u in units] == [128, 128, 44]
