"""Tests for IPv4 header construction, parsing and validation."""

import pytest

from repro.checksums.internet import ones_complement_sum
from repro.protocols.ip import (
    IP_HEADER_LEN,
    build_ipv4_header,
    ip_to_int,
    parse_ipv4_header,
    validate_ipv4_header,
)


class TestIpToInt:
    def test_dotted_quad(self):
        assert ip_to_int("10.0.0.1") == 0x0A000001
        assert ip_to_int("255.255.255.255") == 0xFFFFFFFF

    def test_passthrough_int(self):
        assert ip_to_int(0x7F000001) == 0x7F000001

    @pytest.mark.parametrize("bad", ["10.0.0", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            ip_to_int(bad)

    def test_rejects_out_of_range_int(self):
        with pytest.raises(ValueError):
            ip_to_int(2**32)


class TestBuildAndParse:
    def test_roundtrip(self):
        header = build_ipv4_header(296, 42, "127.0.0.1", "127.0.0.2")
        parsed = parse_ipv4_header(header)
        assert parsed.version == 4
        assert parsed.ihl == 5
        assert parsed.total_length == 296
        assert parsed.ident == 42
        assert parsed.protocol == 6
        assert parsed.src == ip_to_int("127.0.0.1")
        assert parsed.dst == ip_to_int("127.0.0.2")
        assert parsed.header_length == IP_HEADER_LEN

    def test_checksum_sums_to_all_ones(self):
        header = build_ipv4_header(100, 1, "10.1.2.3", "10.4.5.6")
        assert ones_complement_sum(header) == 0xFFFF

    def test_unfilled_checksum(self):
        header = build_ipv4_header(100, 1, "10.1.2.3", "10.4.5.6",
                                   fill_checksum=False)
        assert header[10:12] == b"\x00\x00"

    def test_ident_wraps_to_16_bits(self):
        header = build_ipv4_header(100, 0x1_0005, "1.2.3.4", "5.6.7.8")
        assert parse_ipv4_header(header).ident == 5

    def test_parse_rejects_short_buffer(self):
        with pytest.raises(ValueError):
            parse_ipv4_header(b"\x45\x00")


class TestValidate:
    def test_valid_header(self):
        header = build_ipv4_header(296, 7, "127.0.0.1", "127.0.0.1")
        assert validate_ipv4_header(header)

    def test_rejects_wrong_version(self):
        header = bytearray(build_ipv4_header(296, 7, "1.1.1.1", "2.2.2.2"))
        header[0] = 0x55
        assert not validate_ipv4_header(header)

    def test_rejects_options(self):
        header = bytearray(build_ipv4_header(296, 7, "1.1.1.1", "2.2.2.2"))
        header[0] = 0x46  # IHL 6
        assert not validate_ipv4_header(header)

    def test_rejects_corrupted_checksum(self):
        header = bytearray(build_ipv4_header(296, 7, "1.1.1.1", "2.2.2.2"))
        header[15] ^= 1
        assert not validate_ipv4_header(header)

    def test_checksum_requirement_can_be_waived(self):
        header = build_ipv4_header(296, 7, "1.1.1.1", "2.2.2.2",
                                   fill_checksum=False)
        assert not validate_ipv4_header(header)
        assert validate_ipv4_header(header, require_checksum=False)

    def test_rejects_tiny_total_length(self):
        header = bytearray(build_ipv4_header(296, 7, "1.1.1.1", "2.2.2.2",
                                             fill_checksum=False))
        header[2:4] = (10).to_bytes(2, "big")
        assert not validate_ipv4_header(header, require_checksum=False)

    def test_rejects_short_buffer(self):
        assert not validate_ipv4_header(b"\x45")

    def test_random_data_rarely_validates(self, rng):
        hits = 0
        for _ in range(500):
            data = rng.integers(0, 256, size=40).astype("uint8").tobytes()
            hits += validate_ipv4_header(data)
        assert hits == 0
