"""Tests for the file-to-packet-stream packetizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checksums.fletcher import Fletcher8
from repro.checksums.internet import fold_carries, word_sums
from repro.protocols.ip import parse_ipv4_header, validate_ipv4_header
from repro.protocols.packetizer import (
    ChecksumPlacement,
    Packetizer,
    PacketizerConfig,
    TCPPacket,
)
from repro.protocols.tcp import (
    parse_tcp_header,
    pseudo_header_word_sum,
    verify_tcp_checksum,
)


class TestSegmentation:
    def test_mss_segmentation(self):
        packets = Packetizer().packetize(bytes(1000))
        assert [len(p.payload) for p in packets] == [256, 256, 256, 232]

    def test_empty_data_yields_no_packets(self):
        assert Packetizer().packetize(b"") == []

    def test_sequence_advances_by_payload(self):
        packets = Packetizer().packetize(bytes(600))
        assert [p.seq for p in packets] == [1, 257, 513]

    def test_ipid_advances_by_one(self):
        packets = Packetizer().packetize(bytes(600))
        assert [p.ipid for p in packets] == [1, 2, 3]

    def test_initial_values_overridable(self):
        packets = Packetizer().packetize(bytes(10), initial_seq=99,
                                         initial_ipid=1000)
        assert packets[0].seq == 99 and packets[0].ipid == 1000

    def test_ip_total_length(self):
        packet = Packetizer().packetize(bytes(100))[0]
        assert parse_ipv4_header(packet.ip_packet).total_length == 140
        assert packet.total_length == 140

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PacketizerConfig(mss=0)
        with pytest.raises(ValueError):
            PacketizerConfig(algorithm="md5")


class TestHeaderPlacementTCP:
    @given(st.integers(1, 600))
    @settings(max_examples=30)
    def test_every_packet_verifies(self, size):
        config = PacketizerConfig()
        data = bytes(i % 251 for i in range(size))
        for packet in Packetizer(config).packetize(data):
            assert verify_tcp_checksum(config.src, config.dst, packet.tcp_segment)

    def test_ip_header_valid(self):
        packet = Packetizer().packetize(b"x" * 50)[0]
        assert validate_ipv4_header(packet.ip_packet)

    def test_tcp_header_fields(self):
        config = PacketizerConfig(sport=2021, dport=8080)
        packet = Packetizer(config).packetize(b"x" * 50)[0]
        tcp = parse_tcp_header(packet.tcp_segment)
        assert tcp.sport == 2021 and tcp.dport == 8080
        assert tcp.data_offset == 5


class TestTrailerPlacement:
    @pytest.mark.parametrize("size", [1, 2, 3, 100, 255, 256])
    def test_appended_sum_verifies(self, size):
        config = PacketizerConfig(placement=ChecksumPlacement.TRAILER)
        packet = Packetizer(config).packetize(bytes(range(size % 251 + 1)) * size)[0]
        segment = packet.tcp_segment
        total = pseudo_header_word_sum(config.src, config.dst, len(segment))
        total += word_sums(segment)
        assert fold_carries(total) == 0xFFFF

    def test_header_field_left_zero(self):
        config = PacketizerConfig(placement=ChecksumPlacement.TRAILER)
        packet = Packetizer(config).packetize(b"hello")[0]
        assert packet.tcp_segment[16:18] == b"\x00\x00"

    def test_two_bytes_appended(self):
        config = PacketizerConfig(placement=ChecksumPlacement.TRAILER)
        packet = Packetizer(config).packetize(b"hello")[0]
        assert len(packet.tcp_segment) == 20 + 5 + 2
        assert packet.payload == b"hello"


class TestFletcherPlacements:
    @pytest.mark.parametrize("algorithm", ["fletcher255", "fletcher256"])
    @pytest.mark.parametrize("placement", list(ChecksumPlacement))
    def test_segment_sums_to_zero(self, algorithm, placement):
        config = PacketizerConfig(algorithm=algorithm, placement=placement)
        fletcher = Fletcher8(int(algorithm[-3:]))
        for packet in Packetizer(config).packetize(bytes(range(250)) * 3):
            assert fletcher.verify(packet.tcp_segment)


class TestAblations:
    def test_non_inverted_stores_plain_sum(self):
        config = PacketizerConfig(invert=False)
        packet = Packetizer(config).packetize(b"q" * 64)[0]
        segment = bytearray(packet.tcp_segment)
        stored = int.from_bytes(segment[16:18], "big")
        segment[16:18] = b"\x00\x00"
        total = pseudo_header_word_sum(config.src, config.dst, len(segment))
        total += word_sums(segment)
        assert fold_carries(total) == stored

    def test_unfilled_ip_header_legacy_mode(self):
        config = PacketizerConfig(fill_ip_header=False)
        packet = Packetizer(config).packetize(b"q" * 64)[0]
        header = parse_ipv4_header(packet.ip_packet)
        assert header.checksum == 0
        assert header.ident == 0
        assert header.ttl == 0
        # Legacy coverage: the whole IP packet sums to 0xFFFF with no
        # pseudo-header.
        assert fold_carries(word_sums(packet.ip_packet)) == 0xFFFF

    def test_legacy_zero_payload_header_cell_is_zero_congruent(self):
        # The Section 6.2 mechanism: for an all-zero payload, the header
        # cell itself becomes a non-zero cell whose checksum is zero.
        config = PacketizerConfig(fill_ip_header=False)
        packet = Packetizer(config).packetize(bytes(256))[0]
        cell0 = packet.ip_packet[:48]
        assert any(cell0)
        assert fold_carries(word_sums(cell0)) in (0x0000, 0xFFFF)

    def test_legacy_mode_only_supports_standard_tcp(self):
        with pytest.raises(ValueError):
            PacketizerConfig(fill_ip_header=False, algorithm="fletcher255")
        with pytest.raises(ValueError):
            PacketizerConfig(fill_ip_header=False,
                             placement=ChecksumPlacement.TRAILER)
        with pytest.raises(ValueError):
            PacketizerConfig(fill_ip_header=False, invert=False)

    def test_none_algorithm_leaves_field_zero(self):
        config = PacketizerConfig(algorithm="none")
        packet = Packetizer(config).packetize(b"q" * 64)[0]
        assert packet.tcp_segment[16:18] == b"\x00\x00"


class TestConfigOverrides:
    def test_with_overrides_copies(self):
        base = PacketizerConfig()
        changed = base.with_overrides(mss=512)
        assert changed.mss == 512 and base.mss == 256
        assert changed.algorithm == base.algorithm

    def test_packet_is_immutable_record(self):
        packet = Packetizer().packetize(b"abc")[0]
        assert isinstance(packet, TCPPacket)
        with pytest.raises(AttributeError):
            packet.seq = 5


class TestSequenceWrap:
    def test_seq_wraps_mod_2_32(self):
        packets = Packetizer().packetize(
            bytes(600), initial_seq=2**32 - 100
        )
        assert packets[0].seq == 2**32 - 100
        assert packets[1].seq == (2**32 - 100 + 256) % 2**32
        for packet in packets:
            assert verify_tcp_checksum(
                PacketizerConfig().src, PacketizerConfig().dst,
                packet.tcp_segment,
            )

    def test_ipid_wraps_mod_2_16(self):
        packets = Packetizer().packetize(bytes(600), initial_ipid=0xFFFF)
        assert [p.ipid for p in packets] == [0xFFFF, 0, 1]
