"""Tests for AAL5 CPCS framing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.aal5 import (
    AAL5_TRAILER_LEN,
    CELL_PAYLOAD,
    AAL5Error,
    aal5_crc_engine,
    build_aal5_frame,
    cells_needed,
    reassemble_frame,
)


class TestFraming:
    def test_frame_is_cell_multiple(self):
        for size in (0, 1, 39, 40, 41, 296, 1000):
            frame = build_aal5_frame(bytes(size))
            assert len(frame.frame) % CELL_PAYLOAD == 0
            assert frame.cell_count == cells_needed(size)

    def test_payload_256_makes_seven_cells(self):
        # The paper's canonical shape: 40-byte header + 256 data.
        frame = build_aal5_frame(bytes(296))
        assert frame.cell_count == 7
        assert len(frame.frame) == 336

    def test_trailer_length_field(self):
        payload = b"hello AAL5"
        frame = build_aal5_frame(payload)
        assert frame.frame[-6:-4] == len(payload).to_bytes(2, "big")
        assert frame.length == len(payload)

    def test_trailer_crc_field(self):
        frame = build_aal5_frame(b"payload")
        engine = aal5_crc_engine()
        assert frame.frame[-4:] == engine.compute(frame.frame[:-4]).to_bytes(4, "big")
        assert frame.crc == engine.compute(frame.frame[:-4])

    def test_padding_is_zero(self):
        frame = build_aal5_frame(b"x")
        pad = frame.frame[1:-AAL5_TRAILER_LEN]
        assert pad == bytes(len(pad))

    def test_uu_and_cpi(self):
        frame = build_aal5_frame(b"x", uu=7, cpi=1)
        assert frame.frame[-8] == 7 and frame.frame[-7] == 1

    def test_oversized_payload_rejected(self):
        with pytest.raises(ValueError):
            build_aal5_frame(bytes(65536))

    def test_cells_view_matches_frame(self):
        frame = build_aal5_frame(bytes(range(200)))
        cells = frame.cells()
        assert cells.shape == (frame.cell_count, CELL_PAYLOAD)
        assert b"".join(c.tobytes() for c in cells) == frame.frame


class TestReassembly:
    @given(st.binary(min_size=0, max_size=500))
    @settings(max_examples=50)
    def test_roundtrip(self, payload):
        frame = build_aal5_frame(payload)
        assert reassemble_frame(frame.cells()) == payload

    def test_detects_corruption(self):
        frame = build_aal5_frame(bytes(300))
        cells = frame.cells().copy()
        cells[1, 3] ^= 0xFF
        with pytest.raises(AAL5Error, match="CRC"):
            reassemble_frame(cells)

    def test_detects_dropped_cell(self):
        frame = build_aal5_frame(bytes(300))
        with pytest.raises(AAL5Error, match="length"):
            reassemble_frame(frame.cells()[1:])

    def test_detects_added_cell(self):
        import numpy as np

        frame = build_aal5_frame(bytes(300))
        cells = np.concatenate([frame.cells()[:1], frame.cells()])
        with pytest.raises(AAL5Error, match="length"):
            reassemble_frame(cells)

    def test_crc_check_optional(self):
        frame = build_aal5_frame(bytes(100))
        cells = frame.cells().copy()
        cells[0, 0] ^= 1
        # Length check still passes; CRC check waived.
        corrupted = reassemble_frame(cells, check_crc=False)
        assert len(corrupted) == 100

    def test_rejects_partial_cells(self):
        with pytest.raises(AAL5Error):
            reassemble_frame([bytes(10)])


def test_cells_needed_boundaries():
    # length + 8-byte trailer packed into 48-byte cells.
    assert cells_needed(0) == 1
    assert cells_needed(40) == 1
    assert cells_needed(41) == 2
    assert cells_needed(88) == 2
    assert cells_needed(89) == 3
