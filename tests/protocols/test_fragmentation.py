"""Tests for IPv4 fragmentation and reassembly."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.fragmentation import (
    FRAGMENT_UNIT,
    FragmentationError,
    fragment_packet,
    reassemble_fragments,
)
from repro.protocols.ip import IP_HEADER_LEN, parse_ipv4_header, validate_ipv4_header
from repro.protocols.packetizer import Packetizer, PacketizerConfig


def make_packet(payload_len, clear_df=True):
    packet = Packetizer(PacketizerConfig(mss=payload_len)).packetize(
        bytes(i % 251 for i in range(payload_len))
    )[0].ip_packet
    if clear_df:
        from repro.core.fragsplice import _clear_df

        packet = _clear_df(packet)
    return packet


class TestFragmentation:
    def test_small_packet_unfragmented(self):
        packet = make_packet(100)
        assert fragment_packet(packet, 1500) == [packet]

    def test_fragment_sizes_and_offsets(self):
        packet = make_packet(256)
        fragments = fragment_packet(packet, 92)
        assert len(fragments) == 4
        offsets = []
        for fragment in fragments:
            header = parse_ipv4_header(fragment)
            offsets.append((header.flags_fragment & 0x1FFF) * FRAGMENT_UNIT)
            assert len(fragment) <= 92
            assert validate_ipv4_header(fragment)
        assert offsets == [0, 72, 144, 216]
        # All but the last have MF set.
        flags = [parse_ipv4_header(f).flags_fragment & 0x2000 for f in fragments]
        assert flags[:-1] == [0x2000] * 3 and flags[-1] == 0

    def test_non_final_payloads_are_8_byte_multiples(self):
        fragments = fragment_packet(make_packet(300), 100)
        for fragment in fragments[:-1]:
            assert (len(fragment) - IP_HEADER_LEN) % FRAGMENT_UNIT == 0

    def test_df_respected(self):
        packet = make_packet(256, clear_df=False)
        with pytest.raises(FragmentationError, match="DF"):
            fragment_packet(packet, 92)

    def test_tiny_mtu_rejected(self):
        with pytest.raises(FragmentationError):
            fragment_packet(make_packet(64), 20)


class TestReassembly:
    @given(st.integers(9, 400), st.integers(60, 200))
    @settings(max_examples=40)
    def test_roundtrip_any_order(self, payload_len, mtu):
        packet = make_packet(payload_len)
        fragments = fragment_packet(packet, mtu)
        rng = random.Random(payload_len)
        shuffled = fragments[:]
        rng.shuffle(shuffled)
        assert reassemble_fragments(shuffled) == packet

    def test_missing_fragment_detected(self):
        fragments = fragment_packet(make_packet(256), 92)
        with pytest.raises(FragmentationError, match="hole"):
            reassemble_fragments(fragments[:1] + fragments[2:])

    def test_missing_final_fragment_detected(self):
        fragments = fragment_packet(make_packet(256), 92)
        with pytest.raises(FragmentationError, match="MF"):
            reassemble_fragments(fragments[:-1])

    def test_duplicate_fragment_detected(self):
        fragments = fragment_packet(make_packet(256), 92)
        with pytest.raises(FragmentationError):
            reassemble_fragments(fragments + [fragments[1]])

    def test_mixed_datagrams_detected(self):
        packets = Packetizer(PacketizerConfig()).packetize(bytes(600))
        from repro.core.fragsplice import _clear_df

        a = fragment_packet(_clear_df(packets[0].ip_packet), 92)
        b = fragment_packet(_clear_df(packets[1].ip_packet), 92)
        with pytest.raises(FragmentationError, match="different datagrams"):
            reassemble_fragments([a[0], b[1], a[2], a[3]])

    def test_corrupted_header_detected(self):
        fragments = [bytearray(f) for f in fragment_packet(make_packet(256), 92)]
        fragments[1][11] ^= 1
        with pytest.raises(FragmentationError, match="checksum"):
            reassemble_fragments([bytes(f) for f in fragments])

    def test_empty_input(self):
        with pytest.raises(FragmentationError):
            reassemble_fragments([])
