"""Tests for the ATM cell model and HEC."""

import pytest

from repro.protocols.aal5 import build_aal5_frame
from repro.protocols.atm import AtmCell, AtmCellHeader, cells_for_frame


class TestHeader:
    def test_pack_unpack_roundtrip(self):
        header = AtmCellHeader(vpi=5, vci=1234, pti=1, clp=1, gfc=2)
        assert AtmCellHeader.unpack(header.pack()) == header

    def test_packed_length(self):
        assert len(AtmCellHeader().pack()) == 5

    def test_hec_detects_header_corruption(self):
        packed = bytearray(AtmCellHeader(vci=77).pack())
        packed[1] ^= 0x10
        with pytest.raises(ValueError, match="HEC"):
            AtmCellHeader.unpack(packed)

    def test_hec_check_can_be_waived(self):
        packed = bytearray(AtmCellHeader(vci=77).pack())
        packed[4] ^= 0xFF
        AtmCellHeader.unpack(packed, check_hec=False)

    def test_last_cell_marking(self):
        assert AtmCellHeader(pti=1).last_cell
        assert not AtmCellHeader(pti=0).last_cell
        assert not AtmCellHeader(pti=4).last_cell  # OAM-ish, user bit clear

    @pytest.mark.parametrize(
        "kwargs",
        [dict(vpi=256), dict(vci=65536), dict(pti=8), dict(clp=2), dict(gfc=16)],
    )
    def test_field_validation(self, kwargs):
        with pytest.raises(ValueError):
            AtmCellHeader(**kwargs)

    def test_unpack_short_buffer(self):
        with pytest.raises(ValueError):
            AtmCellHeader.unpack(b"\x00\x00")


class TestCell:
    def test_payload_must_be_48_bytes(self):
        with pytest.raises(ValueError):
            AtmCell(header=AtmCellHeader(), payload=b"short")

    def test_pack_is_53_bytes(self):
        cell = AtmCell(header=AtmCellHeader(), payload=bytes(48))
        assert len(cell.pack()) == 53


class TestFrameSegmentation:
    def test_last_cell_marked(self):
        frame = build_aal5_frame(bytes(296))
        cells = cells_for_frame(frame)
        assert len(cells) == 7
        assert [c.last for c in cells] == [False] * 6 + [True]

    def test_payloads_reassemble_frame(self):
        frame = build_aal5_frame(bytes(range(100)))
        cells = cells_for_frame(frame)
        assert b"".join(c.payload for c in cells) == frame.frame

    def test_vpi_vci_applied(self):
        frame = build_aal5_frame(bytes(10))
        cells = cells_for_frame(frame, vpi=3, vci=99)
        assert all(c.header.vpi == 3 and c.header.vci == 99 for c in cells)
