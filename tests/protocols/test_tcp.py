"""Tests for TCP header construction and checksum computation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checksums.internet import fold_carries, word_sums
from repro.protocols.tcp import (
    FLAG_ACK,
    FLAG_SYN,
    TCP_HEADER_LEN,
    build_tcp_header,
    parse_tcp_header,
    pseudo_header_word_sum,
    solve_sum_to_target,
    tcp_checksum_field,
    verify_tcp_checksum,
)


class TestHeaderRoundtrip:
    def test_roundtrip(self):
        header = build_tcp_header(20, 54321, seq=1000, ack=2000,
                                  flags=FLAG_ACK, window=8192)
        parsed = parse_tcp_header(header)
        assert parsed.sport == 20
        assert parsed.dport == 54321
        assert parsed.seq == 1000
        assert parsed.ack == 2000
        assert parsed.flags == FLAG_ACK
        assert parsed.window == 8192
        assert parsed.data_offset == 5
        assert len(header) == TCP_HEADER_LEN

    def test_seq_wraps(self):
        header = build_tcp_header(1, 2, seq=2**32 + 5, ack=0)
        assert parse_tcp_header(header).seq == 5

    def test_parse_rejects_short(self):
        with pytest.raises(ValueError):
            parse_tcp_header(b"\x00" * 10)

    def test_flags(self):
        header = build_tcp_header(1, 2, 0, 0, flags=FLAG_SYN | FLAG_ACK)
        assert parse_tcp_header(header).flags == FLAG_SYN | FLAG_ACK


class TestChecksum:
    def test_field_then_verify(self):
        src, dst = "192.168.0.1", "192.168.0.2"
        segment = bytearray(build_tcp_header(1, 2, 100, 0) + b"payload bytes!")
        field = tcp_checksum_field(src, dst, segment)
        segment[16:18] = field.to_bytes(2, "big")
        assert verify_tcp_checksum(src, dst, segment)

    def test_verify_detects_payload_change(self):
        src, dst = "192.168.0.1", "192.168.0.2"
        segment = bytearray(build_tcp_header(1, 2, 100, 0) + b"payload bytes!")
        segment[16:18] = tcp_checksum_field(src, dst, segment).to_bytes(2, "big")
        segment[-1] ^= 0x01
        assert not verify_tcp_checksum(src, dst, segment)

    def test_verify_detects_address_change(self):
        src, dst = "192.168.0.1", "192.168.0.2"
        segment = bytearray(build_tcp_header(1, 2, 100, 0) + b"data")
        segment[16:18] = tcp_checksum_field(src, dst, segment).to_bytes(2, "big")
        assert not verify_tcp_checksum("192.168.0.9", dst, segment)

    def test_pseudo_header_components(self):
        total = pseudo_header_word_sum("0.0.0.1", "0.0.0.2", tcp_length=20)
        assert total == 1 + 2 + 6 + 20

    def test_word_swap_goes_undetected(self):
        # The order-independence weakness, at the TCP layer.
        src, dst = "10.0.0.1", "10.0.0.2"
        segment = bytearray(build_tcp_header(1, 2, 100, 0) + b"ABCDWXYZ")
        segment[16:18] = tcp_checksum_field(src, dst, segment).to_bytes(2, "big")
        swapped = bytearray(segment)
        swapped[20:22], swapped[22:24] = segment[22:24], segment[20:22]
        assert swapped != segment
        assert verify_tcp_checksum(src, dst, swapped)


class TestSolveSumToTarget:
    @given(st.binary(min_size=4, max_size=100), st.data())
    @settings(max_examples=60)
    def test_even_and_odd_offsets(self, data, draw):
        offset = draw.draw(st.integers(0, len(data) - 2))
        buf = bytearray(data)
        buf[offset : offset + 2] = b"\x00\x00"
        value = solve_sum_to_target(word_sums(buf), offset)
        buf[offset : offset + 2] = value.to_bytes(2, "big")
        assert fold_carries(word_sums(buf)) == 0xFFFF

    def test_custom_target(self):
        buf = bytearray(b"\x11\x22\x00\x00\x33\x44")
        value = solve_sum_to_target(word_sums(buf), 2, target=0x1234)
        buf[2:4] = value.to_bytes(2, "big")
        assert fold_carries(word_sums(buf)) == 0x1234
