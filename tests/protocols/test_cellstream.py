"""Tests for cell streams, loss processes and AAL5 reassembly."""

import numpy as np
import pytest

from repro.corpus.generators import generate
from repro.protocols.cellstream import (
    AAL5Reassembler,
    EarlyPacketDiscard,
    GilbertLoss,
    IndependentLoss,
    MarkedCell,
    apply_loss,
    stream_cells,
)
from repro.protocols.ftpsim import FileTransferSimulator


@pytest.fixture
def units():
    return FileTransferSimulator().transfer(generate("english", 1200, 1))


class TestStreamCells:
    def test_marking_and_counts(self, units):
        cells = stream_cells(units)
        assert len(cells) == sum(u.frame.cell_count for u in units)
        marked = [c for c in cells if c.last]
        assert len(marked) == len(units)
        assert cells[-1].last

    def test_frame_indices(self, units):
        cells = stream_cells(units)
        assert cells[0].frame_index == 0
        assert cells[-1].frame_index == len(units) - 1


class TestLossProcesses:
    def test_independent_rate(self):
        model = IndependentLoss(0.3)
        rng = np.random.default_rng(0)
        mask = model.keep_mask(200_000, rng)
        assert abs((~mask).mean() - 0.3) < 0.01

    def test_independent_validation(self):
        with pytest.raises(ValueError):
            IndependentLoss(1.0)
        with pytest.raises(ValueError):
            IndependentLoss(-0.1)

    def test_zero_loss_keeps_everything(self, units):
        cells = stream_cells(units)
        delivered = apply_loss(cells, IndependentLoss(0.0),
                               np.random.default_rng(0))
        assert delivered == cells

    def test_gilbert_burstiness(self):
        # Same marginal loss rate, but losses cluster into runs.
        rng = np.random.default_rng(1)
        model = GilbertLoss(p_bad=0.02, p_recover=0.2)
        mask = model.keep_mask(100_000, rng)
        losses = ~mask
        rate = losses.mean()
        # Mean burst length = 1/p_recover = 5 cells.
        runs = []
        current = 0
        for lost in losses:
            if lost:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert 3.0 < np.mean(runs) < 7.0
        assert 0.05 < rate < 0.2

    def test_gilbert_validation(self):
        with pytest.raises(ValueError):
            GilbertLoss(0, 0.5)
        with pytest.raises(ValueError):
            GilbertLoss(0.1, 0)

    def test_early_packet_discard_drops_frame_tails(self, units):
        cells = stream_cells(units)
        rng = np.random.default_rng(2)
        mask = EarlyPacketDiscard(IndependentLoss(0.2)).apply(cells, rng)
        # Within each frame, once dropped always dropped.
        position = 0
        for unit in units:
            n = unit.frame.cell_count
            frame_mask = mask[position : position + n]
            seen_drop = False
            for kept in frame_mask:
                if seen_drop:
                    assert not kept
                seen_drop = seen_drop or not kept
            position += n


class TestReassembler:
    def test_lossless_roundtrip(self, units):
        frames = AAL5Reassembler().feed_all(stream_cells(units))
        assert len(frames) == len(units)
        for frame, unit in zip(frames, units):
            assert b"".join(frame) == unit.frame.frame

    def test_splice_formed_when_marked_cell_lost(self, units):
        cells = stream_cells(units)
        # Drop exactly the first frame's marked cell.
        first_marked = next(i for i, c in enumerate(cells) if c.last)
        delivered = cells[:first_marked] + cells[first_marked + 1 :]
        frames = AAL5Reassembler().feed_all(delivered)
        assert len(frames) == len(units) - 1
        # The first reassembled "frame" is the splice of frames 0 and 1.
        expected = units[0].frame.cell_count - 1 + units[1].frame.cell_count
        assert len(frames[0]) == expected

    def test_oversize_guard(self):
        reassembler = AAL5Reassembler(max_cells=3)
        filler = [MarkedCell(bytes(48), last=False)] * 5
        for cell in filler:
            assert reassembler.feed(cell) is None
        assert reassembler.oversized_discards == 1
        assert reassembler.pending_cells < 3

    def test_pending_state(self):
        reassembler = AAL5Reassembler()
        reassembler.feed(MarkedCell(bytes(48), last=False))
        assert reassembler.pending_cells == 1
        frame = reassembler.feed(MarkedCell(bytes(48), last=True))
        assert frame is not None and len(frame) == 2
        assert reassembler.pending_cells == 0
