"""Store hardening satellites: manifest degradation, idempotent delete.

Covers the two robustness satellites on the store itself:

* :meth:`ManifestStore.load` treats *any* defect — corrupt frame,
  unparsable JSON, schema drift, I/O errors — as "no manifest";
* :meth:`ObjectStore.delete` is idempotent under concurrent eviction,
  and :meth:`ObjectStore._atomic_write` leaves durable, whole frames.
"""

from __future__ import annotations

import shutil

import pytest

from repro.faults.injector import FaultyObjectStore
from repro.faults.plan import FaultPlan
from repro.store.manifest import ManifestStore, RunManifest
from repro.store.objstore import ObjectStore, _fsync_dir, unframe_object

RUN_KEY = "ab" * 32


@pytest.fixture
def store(tmp_path):
    return ObjectStore(tmp_path / "manifests")


def saved_manifest(store):
    manifests = ManifestStore(store)
    manifest = RunManifest(run_key=RUN_KEY, label="demo")
    manifest.register("cd" * 32, "file-a")
    manifest.mark_done("cd" * 32)
    manifests.save(manifest)
    return manifests


class TestManifestDegradation:
    def test_clean_round_trip(self, store):
        manifests = saved_manifest(store)
        loaded = manifests.load(RUN_KEY)
        assert loaded is not None and loaded.done == 1

    def test_missing_is_none(self, store):
        assert ManifestStore(store).load(RUN_KEY) is None

    def test_corrupt_frame_degrades_and_discards(self, store):
        manifests = saved_manifest(store)
        path = store.path_for(RUN_KEY)
        blob = bytearray(path.read_bytes())
        blob[3] ^= 0x40
        path.write_bytes(bytes(blob))
        assert manifests.load(RUN_KEY) is None
        assert RUN_KEY not in store  # defective entry was dropped

    def test_unparsable_json_degrades_and_discards(self, store):
        # The integrity trailer verifies, but the payload is not JSON.
        store.put_keyed(RUN_KEY, b"{this is not json")
        assert ManifestStore(store).load(RUN_KEY) is None
        assert RUN_KEY not in store

    def test_schema_drift_degrades(self, store):
        manifests = saved_manifest(store)
        payload = store.get(RUN_KEY).replace(b'"schema": 1', b'"schema": 99')
        store.put_keyed(RUN_KEY, payload)
        assert manifests.load(RUN_KEY) is None

    def test_io_error_degrades_to_none(self, store):
        saved_manifest(store)
        flaky = ManifestStore(
            FaultyObjectStore(store, FaultPlan(0, store_rates={"eio": 1.0}))
        )
        assert flaky.load(RUN_KEY) is None

    def test_discard_failure_is_swallowed(self, store):
        # Even the cleanup of a defective entry must not raise.
        manifests = saved_manifest(store)
        path = store.path_for(RUN_KEY)
        path.write_bytes(b"garbage with no trailer")

        class ExplodingDelete(ObjectStore):
            def delete(self, digest):
                raise OSError("deletion refused")

        flaky = ManifestStore(ExplodingDelete(store.root))
        assert flaky.load(RUN_KEY) is None
        assert manifests.load(RUN_KEY) is None


class TestDeleteIdempotency:
    def test_second_delete_reports_false(self, tmp_path):
        store = ObjectStore(tmp_path / "objects")
        digest = store.put(b"payload")
        assert store.delete(digest) is True
        assert store.delete(digest) is False

    def test_delete_survives_vanished_fanout_dir(self, tmp_path):
        # A concurrent evictor removed the whole fan-out directory.
        store = ObjectStore(tmp_path / "objects")
        digest = store.put(b"payload")
        shutil.rmtree(store.path_for(digest).parent.parent)
        assert store.delete(digest) is False

    def test_clear_is_safe_to_repeat(self, tmp_path):
        store = ObjectStore(tmp_path / "objects")
        store.put(b"one")
        store.put(b"two")
        assert store.clear() == 2
        assert store.clear() == 0


class TestAtomicWriteDurability:
    def test_atomic_write_leaves_a_whole_verified_frame(self, tmp_path):
        store = ObjectStore(tmp_path / "objects")
        digest = store.put(b"durable payload")
        blob = store.path_for(digest).read_bytes()
        payload, algorithm = unframe_object(blob)
        assert payload == b"durable payload"
        assert algorithm == store.algorithm
        # No temp files left behind by the write protocol.
        assert not list((tmp_path / "objects").rglob("*.tmp"))

    def test_fsync_dir_tolerates_missing_directory(self, tmp_path):
        _fsync_dir(tmp_path / "does-not-exist")  # must not raise

    def test_fsync_dir_on_real_directory(self, tmp_path):
        _fsync_dir(tmp_path)  # must not raise
