"""The CRC scrubber: detect seeded rot, quarantine, repair, backfill.

The acceptance chaos test lives here: seed bitflip/truncate corruption
across *every* object of one replica of a two-replica multiplexer and
assert the scrubber detects 100% of it, repairs everything from the
healthy replica, and that a follow-up scrub comes back clean.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.cli import main
from repro.store.backends.local import LocalBackend
from repro.store.backends.multiplex import MultiplexBackend
from repro.store.framing import frame_object
from repro.store.runner import RunStore
from repro.store.scrub import scrub_backend, scrub_run_store


def put_objects(backend, count, tag=b"scrub"):
    keys = []
    for i in range(count):
        payload = tag + b"-%d" % i
        key = hashlib.sha256(payload).hexdigest()
        backend.put_frame(key, frame_object(payload))
        keys.append(key)
    return keys


def corrupt_replica(replica, keys):
    """Bit-flip even objects, truncate odd ones; returns count seeded."""
    for i, key in enumerate(sorted(keys)):
        path = replica.path_for(key)
        blob = bytearray(path.read_bytes())
        if i % 2 == 0:
            blob[len(blob) // 2] ^= 0x04
            path.write_bytes(bytes(blob))
        else:
            path.write_bytes(bytes(blob[:-5]))
    return len(keys)


class TestScrubClean:
    def test_clean_store_reports_clean(self, tmp_path):
        backend = LocalBackend(tmp_path / "clean")
        keys = put_objects(backend, 5)
        report = scrub_backend(backend)
        assert report.clean
        assert report.scanned == len(keys)
        assert report.ok == len(keys)
        assert report.corrupt == 0
        assert report.findings == []


class TestScrubChaos:
    """The acceptance criterion: 100% detection, 100% repair."""

    def test_detects_and_repairs_all_seeded_corruption(self, tmp_path):
        first = LocalBackend(tmp_path / "r0")
        second = LocalBackend(tmp_path / "r1")
        mux = MultiplexBackend([first, second])
        keys = put_objects(mux, 12)
        seeded = corrupt_replica(first, keys)

        report = scrub_backend(mux)
        assert report.corrupt == seeded, "every seeded defect is detected"
        assert report.repaired == seeded, "every defect heals from the twin"
        assert report.unrepairable == 0

        # The multiplexer serves every object bit-identically again...
        for key in keys:
            frame = mux.get_frame(key)
            assert first.get_frame(key) == frame == second.get_frame(key)
        # ...and a follow-up scrub proves the heal stuck.
        assert scrub_backend(mux).clean

    def test_findings_carry_replica_and_action(self, tmp_path):
        first = LocalBackend(tmp_path / "r0")
        second = LocalBackend(tmp_path / "r1")
        mux = MultiplexBackend([first, second])
        keys = put_objects(mux, 2)
        corrupt_replica(first, keys)
        report = scrub_backend(mux, namespace="objects")
        repaired = [f for f in report.findings if f.action == "repaired"]
        assert len(repaired) == 2
        assert all(f.namespace == "objects" for f in repaired)
        assert all(str(first.root) in f.replica for f in repaired)
        assert report.per_replica[first.describe()]["corrupt"] == 2
        assert report.per_replica[second.describe()]["corrupt"] == 0

    def test_quarantine_salvages_the_corrupt_bytes(self, tmp_path):
        first = LocalBackend(tmp_path / "r0")
        second = LocalBackend(tmp_path / "r1")
        mux = MultiplexBackend([first, second])
        keys = put_objects(mux, 3)
        corrupt_replica(first, keys)
        quarantine = tmp_path / "quarantine"
        report = scrub_backend(mux, quarantine=quarantine)
        assert report.quarantined == 3
        salvaged = sorted(p.name for p in
                          (quarantine / "default" / "replica-0").iterdir())
        assert salvaged == sorted(keys)

    def test_unrepairable_without_a_healthy_twin(self, tmp_path):
        solo = LocalBackend(tmp_path / "solo")
        keys = put_objects(solo, 4)
        corrupt_replica(solo, keys)
        report = scrub_backend(solo)
        assert report.corrupt == 4
        assert report.repaired == 0
        assert report.unrepairable == 4
        assert not report.clean
        # Corrupt objects are evicted: the cache recomputes on demand.
        for key in keys:
            assert not solo.contains(key)

    def test_backfill_is_replica_anti_entropy(self, tmp_path):
        first = LocalBackend(tmp_path / "r0")
        second = LocalBackend(tmp_path / "r1")
        keys = put_objects(first, 6)
        report = scrub_backend(MultiplexBackend([first, second]))
        assert report.backfilled == 6
        for key in keys:
            assert second.get_frame(key) == first.get_frame(key)
        assert scrub_backend(MultiplexBackend([first, second])).backfilled == 0

    def test_no_repair_mode_only_evicts(self, tmp_path):
        first = LocalBackend(tmp_path / "r0")
        second = LocalBackend(tmp_path / "r1")
        mux = MultiplexBackend([first, second])
        keys = put_objects(mux, 2)
        corrupt_replica(first, keys)
        report = scrub_backend(mux, repair=False, backfill=False)
        assert report.corrupt == 2
        assert report.repaired == 0
        assert report.unrepairable == 2
        for key in keys:
            assert not first.contains(key)
            assert second.contains(key)


class TestScrubRunStore:
    def test_merges_every_namespace(self, tmp_path):
        mux = MultiplexBackend([
            LocalBackend(tmp_path / "r0"), LocalBackend(tmp_path / "r1"),
        ])
        store = RunStore(backend=mux)
        store.results.put_json("cafe01" * 4 + "beef" * 4, {"v": 1})
        store.objects.put(b"an object payload")
        report = scrub_run_store(store)
        assert report.clean
        assert report.scanned >= 2

    def test_report_renders_human_lines(self, tmp_path):
        backend = LocalBackend(tmp_path / "r")
        put_objects(backend, 1)
        text = scrub_backend(backend).render()
        assert "objects scanned    1" in text
        assert "verified ok        1" in text


class TestScrubCLI:
    def test_scrub_command_repairs_and_exits_zero(self, tmp_path, capsys):
        first = LocalBackend(tmp_path / "r0")
        second = LocalBackend(tmp_path / "r1")
        mux = MultiplexBackend([first, second])
        store = RunStore(backend=mux)
        store.objects.put(b"cli payload one")
        store.objects.put(b"cli payload two")
        corrupt_replica(first.sub("objects"),
                        list(first.sub("objects").keys()))
        spec = "%s,%s" % (tmp_path / "r0", tmp_path / "r1")
        code = main(["store", "scrub", "--store-url", spec])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "corrupt            2" in out
        assert "repaired           2" in out
        code = main(["store", "scrub", "--store-url", spec])
        out = capsys.readouterr().out
        assert code == 0
        assert "corrupt            0" in out

    def test_scrub_exits_nonzero_on_unrepairable(self, tmp_path, capsys):
        solo = LocalBackend(tmp_path / "solo")
        store = RunStore(backend=solo)
        store.objects.put(b"doomed payload")
        corrupt_replica(solo.sub("objects"),
                        list(solo.sub("objects").keys()))
        code = main(["store", "scrub", "--store-url", str(tmp_path / "solo")])
        out = capsys.readouterr().out
        assert code == 1, out
        assert "unrepairable       1" in out
