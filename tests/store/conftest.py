"""Store tests always run against an isolated cache root."""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def cache_root(tmp_path, monkeypatch):
    """Point the default store root at a per-test temp directory."""
    root = tmp_path / "cache-root"
    monkeypatch.setenv("REPRO_CHECKSUMS_CACHE", str(root))
    return root
