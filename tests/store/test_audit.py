"""Tests for the store integrity audit walker."""

from __future__ import annotations

from repro.core.experiment import run_splice_experiment
from repro.corpus.profiles import build_filesystem
from repro.store.audit import audit_object_store, audit_run_store
from repro.store.objstore import ObjectStore, frame_object
from repro.store.runner import RunStore


def flip_byte(path, index=9, mask=0x01):
    blob = bytearray(path.read_bytes())
    blob[index] ^= mask
    path.write_bytes(bytes(blob))


class TestAuditWalk:
    def test_clean_store_audits_clean(self, cache_root):
        store = RunStore()
        run_splice_experiment(build_filesystem("uniform", 40_000, 3), store=store)
        store.objects.put(b"an auxiliary blob")
        report = audit_run_store(store)
        assert report.clean
        assert report.scanned == report.ok >= 3  # shards + manifest + blob
        assert report.bytes_scanned > 0

    def test_single_flipped_byte_is_detected(self, cache_root):
        store = RunStore()
        run_splice_experiment(build_filesystem("uniform", 40_000, 3), store=store)
        digest = next(iter(store.shards.store.digests()))
        flip_byte(store.shards.store.path_for(digest))

        report = audit_run_store(store)
        assert report.corrupt == 1
        (finding,) = report.findings
        assert finding.namespace == "shards"
        assert finding.digest == digest
        assert not finding.evicted  # audit without --evict only reports
        assert digest in store.shards.store

    def test_evict_removes_corrupt_objects(self, cache_root):
        store = RunStore()
        fs = build_filesystem("uniform", 40_000, 3)
        baseline = run_splice_experiment(fs, store=store)
        digest = next(iter(store.shards.store.digests()))
        flip_byte(store.shards.store.path_for(digest))

        report = audit_run_store(store, evict=True)
        assert report.corrupt == 1
        assert report.findings[0].evicted
        assert digest not in store.shards.store

        # The subsequent run transparently recomputes the evicted entry.
        recomputed = run_splice_experiment(fs, store=RunStore())
        assert recomputed.counters == baseline.counters

    def test_render_mentions_corruption(self, cache_root):
        store = RunStore()
        store.objects.put(b"healthy")
        digest = next(iter(store.objects.digests()))
        flip_byte(store.objects.path_for(digest), index=2)
        text = audit_run_store(store).render()
        assert "corrupt            1" in text
        assert "CORRUPT objects/" in text


class TestContentAddressCrossCheck:
    def test_trailer_pass_address_mismatch_counts_as_miss(self, cache_root):
        # Re-frame a *different* payload under the original address: the
        # trailer verifies (it matches the new payload) but the content
        # address does not -- the audit's "undetected by the check code"
        # case, caught only by the stronger digest.
        store = ObjectStore(cache_root / "objects")
        digest = store.put(b"the original payload")
        store.path_for(digest).write_bytes(frame_object(b"an impostor payload"))

        report = audit_object_store(store, content_addressed=True)
        assert report.corrupt == 1
        assert report.trailer_misses == 1
        assert "content address mismatch" in report.findings[0].reason

    def test_keyed_namespaces_skip_address_check(self, cache_root):
        store = ObjectStore(cache_root / "results")
        store.put_keyed("ab" * 32, b"keyed payload")  # key != sha256(payload)
        report = audit_object_store(store, namespace="results")
        assert report.clean
