"""The degraded-mode write spool: a total outage loses no writes.

:class:`WriteSpool` is the local half of a store-and-forward queue —
integrity-trailed frames land under ``<spool>/<namespace>/<key>``
through the atomic-write discipline when every replica is
open-circuit, and :func:`drain_spool` (or ``store flush-spool``)
replays them idempotently once a replica heals.
"""

from __future__ import annotations

import hashlib
import threading
import warnings

import pytest

from repro.faults.injector import FaultyBackend
from repro.faults.plan import FaultPlan
from repro.store.api.server import serve_store
from repro.store.backends.local import LocalBackend
from repro.store.backends.memory import MemoryBackend
from repro.store.backends.multiplex import MultiplexBackend
from repro.store.framing import IntegrityError, frame_object
from repro.store.resilience import ResilienceController
from repro.store.spool import WriteSpool, default_spool_dir, drain_spool
from repro.telemetry.core import collect


def payload_key(payload):
    return hashlib.sha256(payload).hexdigest()


def frame_for(payload):
    return frame_object(payload)


@pytest.fixture
def spool(tmp_path):
    return WriteSpool(tmp_path / "spool")


class TestWriteSpool:
    def test_put_then_get_roundtrips_verified(self, spool):
        frame = frame_for(b"queued write")
        key = payload_key(b"queued write")
        spool.put("objects", key, frame)
        assert spool.get("objects", key) == frame

    def test_get_missing_raises_keyerror(self, spool):
        with pytest.raises(KeyError):
            spool.get("objects", payload_key(b"never spooled"))

    def test_rotted_entry_is_never_served(self, spool, tmp_path):
        key = payload_key(b"rotting write")
        path = spool.put("objects", key, frame_for(b"rotting write"))
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x40
        path.write_bytes(bytes(blob))
        with pytest.raises(IntegrityError):
            spool.get("objects", key)

    def test_put_is_idempotent_per_key(self, spool):
        frame = frame_for(b"same write twice")
        key = payload_key(b"same write twice")
        spool.put("objects", key, frame)
        spool.put("objects", key, frame)
        assert spool.count() == 1

    def test_entries_walk_is_sorted_and_namespaced(self, spool):
        for namespace in ("shards", "objects"):
            for payload in (b"entry one", b"entry two"):
                spool.put(namespace, payload_key(payload),
                          frame_for(payload))
        walked = spool.entries()
        assert [ns for ns, _, _ in walked] == sorted(
            ns for ns, _, _ in walked
        )
        assert spool.count() == 4
        assert not spool.empty

    def test_stats_report_entries_and_bytes(self, spool):
        assert spool.stats()["entries"] == 0
        spool.put("objects", payload_key(b"stat me"),
                  frame_for(b"stat me"))
        stats = spool.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert "spool" in stats["dir"]

    def test_default_spool_dir_lives_under_the_store_root(self, tmp_path):
        assert default_spool_dir(tmp_path) == tmp_path / "spool"

    def test_discard_drops_a_superseded_entry(self, spool):
        key = payload_key(b"superseded write")
        spool.put("manifests", key, frame_for(b"superseded write"))
        with collect() as telemetry:
            assert spool.discard("manifests", key)
        assert spool.empty
        counters = telemetry.snapshot()["counters"]
        assert counters["resilience.spool.superseded"] == 1
        with pytest.raises(KeyError):
            spool.get("manifests", key)

    def test_discard_of_an_absent_entry_is_false(self, spool):
        assert not spool.discard("manifests", payload_key(b"never queued"))


class TestDrainSpool:
    def test_replays_into_a_bare_backend_and_unlinks(self, spool):
        backend = MemoryBackend()
        frame = frame_for(b"replay me")
        key = payload_key(b"replay me")
        spool.put("objects", key, frame)
        report = drain_spool(backend, spool)
        assert report.replayed == 1
        assert report.clean
        assert spool.empty
        assert backend.sub("objects").get_frame(key) == frame

    def test_replays_into_every_replica_of_a_multiplexer(self, spool):
        replicas = [MemoryBackend(), MemoryBackend()]
        mux = MultiplexBackend(replicas)
        frame = frame_for(b"fan out on drain")
        key = payload_key(b"fan out on drain")
        spool.put("shards", key, frame)
        report = drain_spool(mux, spool)
        assert report.replayed == 1
        for replica in replicas:
            assert replica.sub("shards").get_frame(key) == frame

    def test_corrupt_entries_stay_on_disk_as_evidence(self, spool):
        key = payload_key(b"will rot in the spool")
        path = spool.put("objects", key, frame_for(b"will rot in the spool"))
        blob = bytearray(path.read_bytes())
        blob[-3] ^= 0x01
        path.write_bytes(bytes(blob))
        backend = MemoryBackend()
        report = drain_spool(backend, spool)
        assert report.corrupt == 1
        assert report.replayed == 0
        assert not report.clean
        assert path.exists()  # post-mortem evidence, not silent deletion
        assert not backend.sub("objects").contains(key)

    def test_unacceptable_entries_stay_queued(self, spool):
        dead = FaultyBackend(
            MemoryBackend(),
            FaultPlan(0, store_rates={"erofs": 1.0}, max_faults=1000),
        )
        key = payload_key(b"nowhere to go")
        spool.put("objects", key, frame_for(b"nowhere to go"))
        report = drain_spool(dead, spool)
        assert report.failed == 1
        assert report.remaining == 1
        # The entry survives for the next flush attempt.
        assert spool.get("objects", key)

    def test_drain_is_idempotent(self, spool):
        backend = MemoryBackend()
        key = payload_key(b"drain twice")
        spool.put("objects", key, frame_for(b"drain twice"))
        assert drain_spool(backend, spool).replayed == 1
        second = drain_spool(backend, spool)
        assert second.replayed == 0
        assert second.clean

    def test_drain_counts_into_telemetry_and_health(self, spool):
        from repro.core.supervisor import RunHealth

        health = RunHealth()
        key = payload_key(b"counted drain")
        with collect() as telemetry:
            spool.put("objects", key, frame_for(b"counted drain"))
            drain_spool(MemoryBackend(), spool, health=health)
        counters = telemetry.snapshot()["counters"]
        assert counters["resilience.spool.spooled"] == 1
        assert counters["resilience.spool.replayed"] == 1
        assert any("spool drained" in note for note in health.degradations)

    def test_render_lists_non_replayed_entries(self, spool):
        key = payload_key(b"render rot")
        path = spool.put("objects", key, frame_for(b"render rot"))
        path.write_bytes(path.read_bytes()[:-4])
        report = drain_spool(MemoryBackend(), spool)
        text = report.render()
        assert "spool corrupt      1" in text
        assert "CORRUPT objects/%s" % key[:16] in text


class TestMultiplexerSpooling:
    """Total outage: PUTs survive locally and replay after the heal."""

    def outage_mux(self, tmp_path, max_faults=1000):
        spool = WriteSpool(tmp_path / "spool")
        controller = ResilienceController(
            failure_threshold=2, cooldown_ops=100, spool=spool
        )
        dead = FaultyBackend(
            MemoryBackend(),
            FaultPlan(0, store_rates={"erofs": 1.0}, max_faults=max_faults),
        )
        mux = MultiplexBackend([dead], resilience=controller)
        return mux, spool, dead

    def test_outage_puts_land_in_the_spool(self, tmp_path):
        mux, spool, _ = self.outage_mux(tmp_path)
        frame = frame_for(b"written during the outage")
        key = payload_key(b"written during the outage")
        with pytest.warns(RuntimeWarning, match="spooling locally"):
            mux.put_frame(key, frame)
        assert spool.get("default", key) == frame

    def test_spooled_writes_are_readable_and_visible(self, tmp_path):
        mux, spool, _ = self.outage_mux(tmp_path)
        frame = frame_for(b"read back from the spool")
        key = payload_key(b"read back from the spool")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            mux.put_frame(key, frame)
        assert mux.contains(key)
        assert mux.get_frame(key) == frame  # served from the spool

    def test_outage_warns_once_not_per_write(self, tmp_path):
        mux, _, _ = self.outage_mux(tmp_path)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for payload in (b"first", b"second", b"third"):
                mux.put_frame(payload_key(payload), frame_for(payload))
        spooling = [w for w in caught
                    if "spooling locally" in str(w.message)]
        assert len(spooling) == 1

    def test_drain_after_heal_completes_the_replica(self, tmp_path):
        # The plan dries up after the 2 injections that trip the
        # breaker; every later write spools without touching the
        # replica, so the drain meets a healed backend.
        mux, spool, dead = self.outage_mux(tmp_path, max_faults=2)
        payloads = [b"outage write %d" % i for i in range(6)]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for payload in payloads:
                mux.put_frame(payload_key(payload), frame_for(payload))
        assert not spool.empty
        report = mux.drain_spool()
        assert report.clean
        assert spool.empty
        for payload in payloads:
            assert dead.inner.sub("default").contains(payload_key(payload))

    def test_post_heal_write_supersedes_the_spooled_version(self, tmp_path):
        # Mutable-key rollback scenario: a manifest spooled during the
        # outage must NOT be replayed over the newer version written
        # directly once the replica heals.
        mux, spool, dead = self.outage_mux(tmp_path, max_faults=2)
        key = payload_key(b"manifest key")
        stale = frame_for(b"manifest v1, spooled during the outage")
        fresh = frame_for(b"manifest v2, written after the heal")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            mux.put_frame(key, stale)          # fault 1: spooled
            mux.put_frame(key, stale)          # fault 2: breaker opens
        assert spool.get("default", key) == stale
        # Cool-down elapses (gets tick the controller); the plan is
        # dry, so the half-open read probe reintegrates the replica.
        for _ in range(101):
            with pytest.raises(KeyError):
                mux.get_frame(payload_key(b"unrelated miss"))
        mux.put_frame(key, fresh)              # direct write, post-heal
        with pytest.raises(KeyError):
            spool.get("default", key)          # stale entry discarded
        report = mux.drain_spool()
        assert report.clean
        assert dead.inner.sub("default").get_frame(key) == fresh

    def test_mux_without_spool_raises_on_total_lockout(self):
        controller = ResilienceController(failure_threshold=1,
                                          cooldown_ops=100)
        dead = FaultyBackend(
            MemoryBackend(),
            FaultPlan(0, store_rates={"erofs": 1.0}, max_faults=1000),
        )
        mux = MultiplexBackend([dead], resilience=controller)
        frame = frame_for(b"no spool to fall back on")
        key = payload_key(b"no spool to fall back on")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with pytest.raises(OSError):
                mux.put_frame(key, frame)
            with pytest.raises(OSError, match="open-circuit"):
                mux.put_frame(key, frame)  # breaker open, nowhere to go

    def test_drain_spool_returns_none_without_a_controller(self):
        assert MultiplexBackend([MemoryBackend()]).drain_spool() is None


class TestFlushSpoolCLI:
    """``store flush-spool``: 0 once the spool is empty, 1 otherwise."""

    @pytest.fixture
    def served(self, tmp_path):
        root = tmp_path / "served"
        server = serve_store(backend=LocalBackend(root), port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield server.url, root
        finally:
            server.shutdown()
            server.server_close()

    def seed_spool(self, cache_dir, payload=b"cli spooled write"):
        spool = WriteSpool(default_spool_dir(cache_dir))
        key = payload_key(payload)
        spool.put("objects", key, frame_for(payload))
        return spool, key

    def test_flush_replays_and_exits_zero(self, served, tmp_path, capsys):
        from repro.cli import main

        url, root = served
        cache_dir = tmp_path / "cache"
        spool, key = self.seed_spool(cache_dir)
        code = main(["store", "flush-spool", "--store-url", url,
                     "--cache-dir", str(cache_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "spool replayed     1" in out
        assert spool.empty
        assert (root / "objects").exists()

    def test_flush_with_dead_remote_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        spool, _ = self.seed_spool(cache_dir)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            # Port 9 (discard) refuses: the entry must stay queued.
            code = main(["store", "flush-spool",
                         "--store-url", "http://127.0.0.1:9",
                         "--cache-dir", str(cache_dir),
                         "--store-timeout", "0.5"])
        assert code == 1
        assert not spool.empty
        assert "spool failed       1" in capsys.readouterr().out

    def test_flush_without_a_spool_is_a_clean_noop(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["store", "flush-spool",
                     "--cache-dir", str(tmp_path / "cache")])
        assert code == 0
        assert "no write spool" in capsys.readouterr().out
