"""Acceptance: sweeps are backend-transparent, bit for bit.

The same cached sweep is driven through a local store, an HTTP remote
store, and a two-replica multiplexer — at ``--workers 1`` and
``--workers 4`` — and every run must print byte-identical results.
The storage topology may change where the bytes live; it must never
change what the experiment reports.
"""

from __future__ import annotations

import threading

import pytest

from repro.cli import main
from repro.store.backends.local import LocalBackend
from repro.store.api.server import serve_store

SWEEP = ["run", "table5", "--bytes", "60000", "--seed", "2"]


@pytest.fixture
def http_store(tmp_path):
    root = tmp_path / "served"
    server = serve_store(backend=LocalBackend(root), port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server.url, root
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def run_sweep(capsys, workers, *store_args):
    argv = SWEEP + ["--workers", str(workers), *store_args]
    assert main(argv) == 0
    return capsys.readouterr().out


@pytest.mark.parametrize("workers", [1, 4])
class TestBackendTransparency:
    def test_http_and_multiplex_match_local(
        self, tmp_path, capsys, http_store, workers
    ):
        url, _ = http_store
        local = run_sweep(
            capsys, workers, "--cache", "--cache-dir", str(tmp_path / "local")
        )
        over_http = run_sweep(capsys, workers, "--store-url", url)
        replicated = run_sweep(
            capsys, workers,
            "--store-url", "%s,%s" % (tmp_path / "r0", tmp_path / "r1"),
        )
        assert over_http == local
        assert replicated == local


class TestWarmRemoteRuns:
    def test_second_http_run_is_byte_identical(self, capsys, http_store):
        url, root = http_store
        cold = run_sweep(capsys, 1, "--store-url", url)
        warm = run_sweep(capsys, 1, "--store-url", url)
        assert warm == cold
        assert any(root.iterdir()), "the server-side root was populated"

    def test_multiplexed_run_populates_both_replicas(self, tmp_path, capsys):
        spec = "%s,%s" % (tmp_path / "r0", tmp_path / "r1")
        run_sweep(capsys, 1, "--store-url", spec)
        first = sorted(
            p.name for p in (tmp_path / "r0").rglob("*") if p.is_file()
        )
        second = sorted(
            p.name for p in (tmp_path / "r1").rglob("*") if p.is_file()
        )
        assert first and first == second

    def test_warm_run_survives_a_rotted_replica(self, tmp_path, capsys):
        spec = "%s,%s" % (tmp_path / "r0", tmp_path / "r1")
        cold = run_sweep(capsys, 1, "--store-url", spec)
        for path in (tmp_path / "r0").rglob("*"):
            if path.is_file():
                blob = bytearray(path.read_bytes())
                blob[len(blob) // 2] ^= 0x08
                path.write_bytes(bytes(blob))
        with pytest.warns(RuntimeWarning):
            degraded = run_sweep(capsys, 1, "--store-url", spec)
        assert degraded == cold
