"""Tests for the counting result cache (hit / miss / corrupt-evict)."""

from __future__ import annotations

from repro.core.results import SpliceCounters
from repro.experiments.report import ExperimentReport
from repro.store.cache import ResultCache
from repro.store.objstore import ObjectStore

KEY = "ab" * 32
OTHER = "cd" * 32


def make_cache(tmp_path):
    return ResultCache(ObjectStore(tmp_path / "results"))


class TestCounters:
    def test_miss_then_hit(self, tmp_path):
        cache = make_cache(tmp_path)
        assert cache.get_json(KEY) is None
        assert cache.stats.misses == 1
        cache.put_json(KEY, {"rows": [1, 2, 3]})
        assert cache.stats.puts == 1
        assert cache.get_json(KEY) == {"rows": [1, 2, 3]}
        assert cache.stats.hits == 1
        assert cache.stats.corrupt == 0

    def test_corrupt_entry_evicted_and_counted(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put_json(KEY, {"value": 42})
        path = cache.store.path_for(KEY)
        blob = bytearray(path.read_bytes())
        blob[1] ^= 0x08
        path.write_bytes(bytes(blob))

        assert cache.get_json(KEY) is None  # never a wrong answer
        assert cache.stats.corrupt == 1
        assert KEY not in cache.store  # evicted
        # ... and the slot is reusable
        cache.put_json(KEY, {"value": 42})
        assert cache.get_json(KEY) == {"value": 42}

    def test_valid_trailer_bad_json_treated_as_corrupt(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.store.put_keyed(KEY, b"not json at all")
        assert cache.get_json(KEY) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.hits == 0

    def test_stats_dict(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.get_json(KEY)
        assert cache.stats.as_dict() == {
            "hits": 0, "misses": 1, "corrupt": 0, "puts": 0,
        }


class TestTypedHelpers:
    def test_counters_round_trip(self, tmp_path):
        cache = make_cache(tmp_path)
        counters = SpliceCounters(total=10, caught_by_header=4, identical=1,
                                  remaining=5, missed_transport=2)
        counters.remaining_by_len[3] = 5
        counters.missed_by_len[3] = 2
        cache.put_object(KEY, counters)
        loaded = cache.get_object(KEY, SpliceCounters.from_json)
        assert loaded == counters

    def test_report_round_trip(self, tmp_path):
        cache = make_cache(tmp_path)
        report = ExperimentReport("table4", "title", "body", {"x": [1.5, 2.5]})
        cache.put_object(OTHER, report)
        loaded = cache.get_object(OTHER, ExperimentReport.from_json)
        assert loaded == report

    def test_get_object_corruption_is_safe(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.store.put_keyed(KEY, b'{"not": "a report"}')
        assert cache.get_object(KEY, ExperimentReport.from_json) is None
        assert cache.stats.corrupt == 1
