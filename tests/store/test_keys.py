"""Tests for canonical cache-key composition."""

from __future__ import annotations

import pytest

from repro.core.engine import EngineOptions
from repro.protocols.packetizer import ChecksumPlacement, PacketizerConfig
from repro.store import keys


class TestCanonicalize:
    def test_json_native_values_pass_through(self):
        assert keys.canonicalize({"a": 1, "b": [True, None, "x"]}) == {
            "a": 1,
            "b": [True, None, "x"],
        }

    def test_dataclasses_are_type_tagged(self):
        out = keys.canonicalize(PacketizerConfig())
        assert out["__type__"] == "PacketizerConfig"
        assert out["mss"] == 256
        assert out["placement"] == "header"  # enum collapsed to value

    def test_tuples_and_sets_become_lists(self):
        assert keys.canonicalize((1, 2)) == [1, 2]
        assert keys.canonicalize({3, 1, 2}) == [1, 2, 3]

    def test_bytes_become_hex(self):
        assert keys.canonicalize(b"\x00\xff") == {"__bytes__": "00ff"}

    def test_unserializable_types_raise(self):
        with pytest.raises(TypeError):
            keys.canonicalize(object())

    def test_canonical_json_is_order_independent(self):
        a = keys.canonical_json({"x": 1, "y": 2})
        b = keys.canonical_json({"y": 2, "x": 1})
        assert a == b


class TestExperimentKeys:
    def test_stable_across_calls(self):
        params = {"fs_bytes": 400_000, "seed": 3}
        assert keys.experiment_key("table4", params) == keys.experiment_key(
            "table4", dict(params)
        )

    def test_every_parameter_matters(self):
        base = keys.experiment_key("table4", {"fs_bytes": 400_000, "seed": 3})
        assert base != keys.experiment_key("table5", {"fs_bytes": 400_000, "seed": 3})
        assert base != keys.experiment_key("table4", {"fs_bytes": 400_001, "seed": 3})
        assert base != keys.experiment_key("table4", {"fs_bytes": 400_000, "seed": 4})

    def test_workers_and_store_never_enter_keys(self):
        base = keys.experiment_key("table1", {"fs_bytes": 1000, "seed": 3})
        loaded = keys.experiment_key(
            "table1",
            {"fs_bytes": 1000, "seed": 3, "workers": 8, "store": "x", "cache": "y"},
        )
        assert base == loaded

    def test_schema_version_is_key_material(self, monkeypatch):
        before = keys.experiment_key("table1", {"seed": 3})
        monkeypatch.setattr(keys, "SCHEMA_VERSION", keys.SCHEMA_VERSION + 1)
        assert keys.experiment_key("table1", {"seed": 3}) != before

    def test_keys_are_sha256_hex(self):
        key = keys.experiment_key("table1", {})
        assert len(key) == 64
        int(key, 16)  # hex


class TestShardKeys:
    def test_config_and_options_matter(self):
        config = PacketizerConfig()
        options = EngineOptions.from_packetizer(config)
        digest = "ab" * 32
        base = keys.shard_key(digest, config, options)
        assert base != keys.shard_key("cd" * 32, config, options)
        trailer = config.with_overrides(placement=ChecksumPlacement.TRAILER)
        assert base != keys.shard_key(
            digest, trailer, EngineOptions.from_packetizer(trailer)
        )
        assert base != keys.shard_key(
            digest, config, EngineOptions.from_packetizer(config, sample_splices=100)
        )

    def test_same_content_same_shard(self):
        config = PacketizerConfig()
        options = EngineOptions.from_packetizer(config)
        assert keys.shard_key("ab" * 32, config, options) == keys.shard_key(
            "ab" * 32, PacketizerConfig(), EngineOptions.from_packetizer(config)
        )
