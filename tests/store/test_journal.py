"""The sweep checkpoint journal: atomic, fingerprinted, self-checking."""

from __future__ import annotations

import pytest

from repro.core.results import SpliceCounters
from repro.store.journal import (
    ShardJournal,
    default_journal_dir,
    journal_path,
    open_journal,
)
from repro.store.objstore import frame_object


def counters(total=10, missed=1):
    c = SpliceCounters()
    c.files = 1
    c.packets = 4
    c.total = total
    c.caught_by_header = total - missed
    c.missed_transport = missed
    return c


class TestLifecycle:
    def test_round_trip(self, tmp_path):
        journal = ShardJournal(tmp_path / "sweep.journal")
        assert journal.open_run("fp-1", label="box", total=2) == {}
        journal.record("shard-a", counters(10))
        journal.record("shard-b", counters(20))
        assert journal.exists()
        assert journal.done == 2 and journal.total == 2

        fresh = ShardJournal(tmp_path / "sweep.journal")
        entries = fresh.open_run("fp-1", label="box", total=2, resume=True)
        assert sorted(entries) == ["shard-a", "shard-b"]
        assert entries["shard-a"] == counters(10)
        assert entries["shard-b"] == counters(20)

    def test_without_resume_the_journal_starts_empty(self, tmp_path):
        journal = ShardJournal(tmp_path / "sweep.journal")
        journal.open_run("fp-1")
        journal.record("shard-a", counters())
        fresh = ShardJournal(tmp_path / "sweep.journal")
        assert fresh.open_run("fp-1", resume=False) == {}

    def test_complete_deletes_the_file(self, tmp_path):
        journal = ShardJournal(tmp_path / "sweep.journal")
        journal.open_run("fp-1")
        journal.record("shard-a", counters())
        assert journal.exists()
        journal.complete()
        assert not journal.exists()
        journal.discard()  # idempotent

    def test_entries_survive_interleaved_flushes(self, tmp_path):
        journal = ShardJournal(tmp_path / "sweep.journal")
        journal.open_run("fp-1")
        for index in range(5):
            journal.record("shard-%d" % index, counters(index + 1))
            # Every record is a full atomic rewrite: a fresh reader at
            # any point sees exactly the shards recorded so far.
            reader = ShardJournal(tmp_path / "sweep.journal")
            entries = reader.open_run("fp-1", resume=True)
            assert len(entries) == index + 1


class TestFingerprint:
    def test_mismatch_discards_with_warning(self, tmp_path):
        journal = ShardJournal(tmp_path / "sweep.journal")
        journal.open_run("fp-old")
        journal.record("shard-a", counters())

        fresh = ShardJournal(tmp_path / "sweep.journal")
        with pytest.warns(RuntimeWarning, match="stale sweep journal"):
            entries = fresh.open_run("fp-new", resume=True)
        assert entries == {}
        # Stale checkpoints are never merged *and* never linger.
        assert not fresh.exists()

    def test_matching_fingerprint_resumes_silently(self, tmp_path, recwarn):
        journal = ShardJournal(tmp_path / "sweep.journal")
        journal.open_run("fp-1")
        journal.record("shard-a", counters())
        fresh = ShardJournal(tmp_path / "sweep.journal")
        assert fresh.open_run("fp-1", resume=True)
        assert [w for w in recwarn if issubclass(
            w.category, RuntimeWarning)] == []


class TestDefects:
    """Any defect degrades to 'no journal'; the sweep restarts cleanly."""

    def _stored(self, tmp_path):
        journal = ShardJournal(tmp_path / "sweep.journal")
        journal.open_run("fp-1")
        journal.record("shard-a", counters())
        return journal.path

    def test_torn_file_degrades_to_no_journal(self, tmp_path):
        path = self._stored(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        fresh = ShardJournal(path)
        assert fresh.open_run("fp-1", resume=True) == {}
        assert not path.is_file()  # defective file removed

    def test_bit_rot_degrades_to_no_journal(self, tmp_path):
        path = self._stored(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 3] ^= 0x40
        path.write_bytes(bytes(blob))
        fresh = ShardJournal(path)
        assert fresh.open_run("fp-1", resume=True) == {}

    def test_valid_frame_with_garbage_json_degrades(self, tmp_path):
        path = self._stored(tmp_path)
        path.write_bytes(frame_object(b"not json at all"))
        fresh = ShardJournal(path)
        assert fresh.open_run("fp-1", resume=True) == {}

    def test_schema_drift_degrades(self, tmp_path):
        path = self._stored(tmp_path)
        payload = b'{"schema":"repro-prehistoric/0","fingerprint":"fp-1"}'
        path.write_bytes(frame_object(payload))
        fresh = ShardJournal(path)
        assert fresh.open_run("fp-1", resume=True) == {}

    def test_unparsable_entries_degrade_with_warning(self, tmp_path):
        import json

        path = self._stored(tmp_path)
        journal = ShardJournal(path)
        payload = json.dumps({
            "schema": journal.SCHEMA,
            "fingerprint": "fp-1",
            "label": "",
            "total": 1,
            "entries": {"shard-a": {"no_such_counter": 1}},
        }).encode("utf-8")
        path.write_bytes(frame_object(payload))
        with pytest.warns(RuntimeWarning, match="defective sweep journal"):
            assert journal.open_run("fp-1", resume=True) == {}

    def test_missing_file_is_simply_empty(self, tmp_path):
        journal = ShardJournal(tmp_path / "never-written.journal")
        assert journal.open_run("fp-1", resume=True) == {}


class TestPaths:
    def test_default_dir_is_under_the_store_root(self, tmp_path):
        assert default_journal_dir(tmp_path) == tmp_path / "journal"

    def test_journal_path_is_a_stable_slug(self, tmp_path):
        from repro.protocols.packetizer import PacketizerConfig

        config = PacketizerConfig()
        a = journal_path(tmp_path, "stanford-u1", config)
        b = journal_path(tmp_path, "stanford-u1", config)
        assert a == b
        assert a.suffix == ".journal"
        assert a.parent == tmp_path

    def test_hostile_labels_are_slugged(self, tmp_path):
        from repro.protocols.packetizer import PacketizerConfig

        path = journal_path(
            tmp_path, "../../etc/passwd fs", PacketizerConfig()
        )
        # The label can never escape the journal directory or produce
        # a hidden/dot-leading filename.
        assert path.resolve().parent == tmp_path.resolve()
        assert "/" not in path.name
        assert not path.name.startswith(".")

    def test_open_journal_builds_under_root(self, tmp_path):
        from repro.protocols.packetizer import PacketizerConfig

        journal = open_journal(tmp_path, "box", PacketizerConfig())
        assert journal.path.parent == tmp_path / "journal"
