"""Tests for the content-addressed object store and its trailers."""

from __future__ import annotations

import hashlib

import pytest

from repro.store.objstore import (
    IntegrityError,
    ObjectStore,
    default_root,
    frame_object,
    unframe_object,
)


class TestAddressing:
    def test_address_is_sha256(self):
        assert ObjectStore.address(b"abc") == hashlib.sha256(b"abc").hexdigest()

    def test_two_level_fanout_layout(self, cache_root):
        store = ObjectStore()
        digest = store.put(b"payload")
        path = store.path_for(digest)
        assert path.exists()
        assert path.parent.name == digest[2:4]
        assert path.parent.parent.name == digest[:2]
        assert path.parent.parent.parent == store.root

    def test_default_root_honours_env(self, cache_root):
        assert default_root() == cache_root

    def test_rejects_non_hex_addresses(self):
        store = ObjectStore()
        with pytest.raises(ValueError):
            store.path_for("../../etc/passwd")
        with pytest.raises(ValueError):
            store.path_for("zz" * 10)


class TestRoundTrip:
    def test_put_get(self):
        store = ObjectStore()
        digest = store.put(b"hello world")
        assert store.get(digest) == b"hello world"
        assert digest in store

    def test_missing_raises_keyerror(self):
        with pytest.raises(KeyError):
            ObjectStore().get("ab" * 32)

    def test_empty_payload(self):
        store = ObjectStore()
        digest = store.put(b"")
        assert store.get(digest) == b""

    def test_put_keyed_and_overwrite(self):
        store = ObjectStore()
        key = "cd" * 32
        store.put_keyed(key, b"first")
        store.put_keyed(key, b"second")
        assert store.get(key) == b"second"

    def test_iteration_and_len(self):
        store = ObjectStore()
        digests = {store.put(bytes([n]) * 40) for n in range(5)}
        assert set(store.digests()) == digests
        assert len(store) == 5
        listed = list(store.digests())
        assert listed == sorted(listed)

    def test_delete_and_clear(self):
        store = ObjectStore()
        digest = store.put(b"doomed")
        assert store.delete(digest)
        assert not store.delete(digest)
        store.put(b"a")
        store.put(b"b")
        assert store.clear() == 2
        assert len(store) == 0

    def test_stats(self):
        store = ObjectStore()
        store.put(b"x" * 100)
        stats = store.stats()
        assert stats["objects"] == 1
        assert stats["bytes"] > 100  # payload plus trailer


class TestIntegrityTrailer:
    def test_every_flipped_bit_is_caught(self):
        # CRC-32/AAL5 has Hamming distance >= 2 at this length: *any*
        # single-bit flip anywhere in the frame must be detected.
        blob = frame_object(b"the paper's subject matter", "crc32-aal5")
        for index in range(len(blob)):
            for bit in (0x01, 0x80):
                damaged = bytearray(blob)
                damaged[index] ^= bit
                with pytest.raises(IntegrityError):
                    unframe_object(bytes(damaged))

    def test_get_detects_corruption(self):
        store = ObjectStore()
        digest = store.put(b"precious bytes")
        path = store.path_for(digest)
        blob = bytearray(path.read_bytes())
        blob[3] ^= 0x10
        path.write_bytes(bytes(blob))
        with pytest.raises(IntegrityError):
            store.get(digest)

    def test_verify_false_skips_the_check(self):
        store = ObjectStore()
        digest = store.put(b"precious bytes")
        path = store.path_for(digest)
        blob = bytearray(path.read_bytes())
        blob[0] ^= 0x01
        path.write_bytes(bytes(blob))
        assert store.get(digest, verify=False) != b"precious bytes"

    def test_truncated_frame(self):
        with pytest.raises(IntegrityError):
            unframe_object(b"")
        with pytest.raises(IntegrityError):
            unframe_object(b"RCS1")
        blob = frame_object(b"data")
        with pytest.raises(IntegrityError):
            unframe_object(blob[:-1])
        with pytest.raises(IntegrityError):
            unframe_object(blob[5:])

    @pytest.mark.parametrize(
        "algorithm", ["crc32-aal5", "crc16-ccitt", "fletcher256", "adler32", "internet"]
    )
    def test_pluggable_trailer_algorithms(self, algorithm):
        blob = frame_object(b"payload bytes", algorithm)
        payload, name = unframe_object(blob)
        assert payload == b"payload bytes"
        assert name == algorithm
        damaged = bytearray(blob)
        damaged[0] ^= 0xFF
        with pytest.raises(IntegrityError):
            unframe_object(bytes(damaged))

    def test_unknown_trailer_algorithm_is_integrity_error(self):
        blob = frame_object(b"payload", "crc32-aal5")
        # splice a bogus algorithm name into the trailer
        bogus = blob.replace(b"crc32-aal5", b"crc32-bogu")
        with pytest.raises(IntegrityError):
            unframe_object(bogus)

    def test_store_level_algorithm_choice(self, cache_root):
        store = ObjectStore(cache_root / "fletcher", algorithm="fletcher256")
        digest = store.put(b"data under a large-block-style sum")
        _, name = unframe_object(store.path_for(digest).read_bytes())
        assert name == "fletcher256"

    def test_unknown_store_algorithm_fails_fast(self):
        with pytest.raises(KeyError):
            ObjectStore(algorithm="not-a-checksum")
