"""Crash consistency: kill the sweep at every shard boundary, resume.

The satellite property test of the robustness layer: a simulated
``kill -9`` (:class:`SimulatedCrash`, a BaseException no ladder rung
absorbs) interrupts :func:`run_sharded_splice` after each shard
boundary in turn.  Whatever the store checkpointed must be enough for
a resumed run to finish with counters **bit-identical** to a run that
was never interrupted — and without recomputing the completed shards.
"""

from __future__ import annotations

import pytest

from repro.core.experiment import run_splice_experiment
from repro.faults.injector import SimulatedCrash
from repro.faults.plan import FaultPlan
from repro.protocols.packetizer import PacketizerConfig
from repro.store.runner import RunStore
from tests.conftest import make_filesystem

pytestmark = pytest.mark.chaos

#: Four distinct content kinds -> four distinct shard keys/jobs.
KINDS = [("english", 6_000), ("gmon", 5_000), ("c-source", 6_000), ("zero-heavy", 5_000)]
N_SHARDS = len(KINDS)


@pytest.fixture
def fs():
    return make_filesystem(KINDS, seed=11, name="crashbox")


@pytest.fixture
def config():
    return PacketizerConfig()


@pytest.fixture
def clean_counters(fs, config):
    return run_splice_experiment(fs, config).counters


@pytest.mark.parametrize("boundary", range(N_SHARDS))
def test_kill_at_each_shard_boundary_then_resume(
    tmp_path, fs, config, clean_counters, boundary
):
    root = tmp_path / "store"

    # --- the interrupted run: die right before computing shard k ----------
    plan = FaultPlan(0, worker_script={boundary: "kill"})
    killed_store = RunStore(root)
    with pytest.raises(SimulatedCrash):
        run_splice_experiment(fs, config, store=killed_store, faults=plan)
    # Exactly the shards before the boundary were checkpointed.
    assert killed_store.shards.stats.puts == boundary

    # --- the resumed run: same root, no faults ----------------------------
    resumed_store = RunStore(root)
    result = run_splice_experiment(fs, config, store=resumed_store)

    assert result.counters == clean_counters
    # Only the missing shards were recomputed...
    assert resumed_store.shards.stats.puts == N_SHARDS - boundary
    # ...and the checkpointed ones were served from the store intact.
    assert resumed_store.shards.stats.hits == boundary
    assert resumed_store.shards.stats.corrupt == 0


def test_resume_after_kill_is_idempotent(tmp_path, fs, config, clean_counters):
    """A third run over the fully-recovered store recomputes nothing."""
    root = tmp_path / "store"
    plan = FaultPlan(0, worker_script={2: "kill"})
    with pytest.raises(SimulatedCrash):
        run_splice_experiment(fs, config, store=RunStore(root), faults=plan)
    run_splice_experiment(fs, config, store=RunStore(root))

    warm_store = RunStore(root)
    result = run_splice_experiment(fs, config, store=warm_store)
    assert result.counters == clean_counters
    assert warm_store.shards.stats.puts == 0
    assert warm_store.shards.stats.hits == N_SHARDS


def test_kill_leaves_no_torn_manifest(tmp_path, fs, config):
    """The manifest checkpoint visible after the crash parses cleanly."""
    from repro.store.keys import shard_key
    from repro.store.runner import run_key_for
    import hashlib

    root = tmp_path / "store"
    plan = FaultPlan(0, worker_script={1: "kill"})
    with pytest.raises(SimulatedCrash):
        run_splice_experiment(fs, config, store=RunStore(root), faults=plan)

    from repro.core.engine import EngineOptions

    options = EngineOptions.from_packetizer(config)
    keys = [
        shard_key(hashlib.sha256(f.data).hexdigest(), config, options)
        for f in fs
    ]
    manifest = RunStore(root).manifests.load(run_key_for("crashbox", keys))
    assert manifest is not None  # atomic writes: never torn
    assert manifest.done == 1  # exactly the pre-boundary checkpoint
    assert not manifest.finished
