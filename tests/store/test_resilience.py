"""The seeded fault-handling layer: retries, breakers, quarantine.

Unit coverage for :mod:`repro.store.resilience` — the deterministic
backoff schedule of :class:`RetryPolicy`, the operation-counted state
machine of :class:`CircuitBreaker`, and the multiplexer integration:
quarantined replicas are not re-probed, half-open probes reintegrate
them, and breakers are shared across ``sub()`` namespaces so a dead
server is one dead server, not four.
"""

from __future__ import annotations

import hashlib
import warnings

import pytest

from repro.faults.plan import FaultPlan
from repro.faults.injector import FaultyBackend
from repro.core.supervisor import RunHealth
from repro.store.backends.memory import MemoryBackend
from repro.store.backends.multiplex import MultiplexBackend
from repro.store.framing import frame_object
from repro.store.resilience import (
    CircuitBreaker,
    ManualClock,
    ResilienceController,
    RetryPolicy,
)
from repro.telemetry.core import collect


def stored(backend, payload=b"resilience payload"):
    key = hashlib.sha256(payload).hexdigest()
    backend.put_frame(key, frame_object(payload))
    return key


def always(kind, max_faults=1000, slow_seconds=0.05):
    return FaultPlan(0, store_rates={kind: 1.0}, max_faults=max_faults,
                     slow_seconds=slow_seconds)


class Flaky:
    """A callable failing ``failures`` times before succeeding."""

    def __init__(self, failures, exc=None):
        self.failures = failures
        self.exc = exc if exc is not None else OSError("transient")
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        return "ok"


class TestManualClock:
    def test_time_moves_only_when_told(self):
        clock = ManualClock()
        assert clock.now() == 0.0
        clock.advance(2.5)
        assert clock.now() == 2.5

    def test_sleep_advances_and_records(self):
        clock = ManualClock(start=1.0)
        clock.sleep(0.25)
        assert clock.now() == 1.25
        assert clock.sleeps == [0.25]


class TestRetryPolicy:
    def test_success_needs_one_attempt(self):
        call = Flaky(0)
        policy = RetryPolicy("t", max_attempts=3, clock=ManualClock())
        assert policy.run("op", call) == "ok"
        assert call.calls == 1

    def test_transient_failure_is_retried(self):
        call = Flaky(2)
        policy = RetryPolicy("t", max_attempts=3, clock=ManualClock())
        assert policy.run("op", call) == "ok"
        assert call.calls == 3

    def test_budget_exhaustion_reraises_the_last_error(self):
        boom = OSError("persistent")
        policy = RetryPolicy("t", max_attempts=2, clock=ManualClock())
        with pytest.raises(OSError, match="persistent"):
            policy.run("op", Flaky(10, boom))

    def test_non_retryable_exceptions_propagate_immediately(self):
        call = Flaky(1, KeyError("not transport"))
        policy = RetryPolicy("t", max_attempts=3, clock=ManualClock())
        with pytest.raises(KeyError):
            policy.run("op", call)
        assert call.calls == 1

    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy("t", max_attempts=5, base_delay=0.1,
                             max_delay=0.3, seed=9, clock=ManualClock())
        raw = [0.1, 0.2, 0.3, 0.3]  # doubling, then the cap
        for attempt, expected in enumerate(raw, start=1):
            delay = policy.backoff(0, attempt)
            jitter = delay / expected
            assert 0.5 <= jitter < 1.0

    def test_backoff_schedule_is_a_pure_function_of_the_seed(self):
        a = RetryPolicy("t", base_delay=0.1, seed=42)
        b = RetryPolicy("t", base_delay=0.1, seed=42)
        c = RetryPolicy("t", base_delay=0.1, seed=43)
        schedule_a = [a.backoff(op, k) for op in range(4) for k in (1, 2)]
        schedule_b = [b.backoff(op, k) for op in range(4) for k in (1, 2)]
        schedule_c = [c.backoff(op, k) for op in range(4) for k in (1, 2)]
        assert schedule_a == schedule_b
        assert schedule_a != schedule_c

    def test_sleeps_follow_the_declared_schedule(self):
        clock = ManualClock()
        policy = RetryPolicy("t", max_attempts=3, base_delay=0.1,
                             seed=7, clock=clock)
        expected = [policy.backoff(0, 1), policy.backoff(0, 2)]
        with pytest.raises(OSError):
            policy.run("op", Flaky(10))
        assert clock.sleeps == expected

    def test_op_deadline_stops_retries(self):
        clock = ManualClock()
        # Backoff of ~0.05-0.1s against a 0.01s op deadline: the retry
        # would start past the deadline, so exactly one attempt runs.
        policy = RetryPolicy("t", max_attempts=5, base_delay=0.1,
                             op_deadline=0.01, clock=clock)
        call = Flaky(10)
        with pytest.raises(OSError):
            policy.run("op", call)
        assert call.calls == 1
        assert clock.sleeps == []

    def test_request_deadline_is_shared_across_ops(self):
        clock = ManualClock()
        policy = RetryPolicy("t", max_attempts=5, base_delay=0.0,
                             request_deadline=1.0, clock=clock)

        def slow_failure():
            clock.advance(0.4)
            raise OSError("slow failure")

        with pytest.raises(OSError):
            policy.run("op-0", slow_failure)  # burns the whole budget
        call = Flaky(10)
        with pytest.raises(OSError):
            policy.run("op-1", call)
        assert call.calls == 1  # no budget left: single attempt

    def test_attempts_and_retries_land_in_telemetry(self):
        with collect() as telemetry:
            policy = RetryPolicy("unit", max_attempts=3,
                                 clock=ManualClock())
            policy.run("op", Flaky(2))
        counters = telemetry.snapshot()["counters"]
        assert counters["resilience.unit.attempts"] == 3
        assert counters["resilience.unit.retries"] == 2
        assert "resilience.unit.giveups" not in counters

    def test_giveup_lands_in_telemetry(self):
        with collect() as telemetry:
            policy = RetryPolicy("unit", max_attempts=2,
                                 clock=ManualClock())
            with pytest.raises(OSError):
                policy.run("op", Flaky(10))
        assert telemetry.snapshot()["counters"]["resilience.unit.giveups"] == 1

    def test_on_error_sees_every_caught_exception(self):
        seen = []
        policy = RetryPolicy("t", max_attempts=3, clock=ManualClock())
        policy.run("op", Flaky(2), on_error=seen.append)
        assert len(seen) == 2
        assert all(isinstance(exc, OSError) for exc in seen)

    def test_rejects_empty_attempt_budget(self):
        with pytest.raises(ValueError):
            RetryPolicy("t", max_attempts=0)


class TestCircuitBreaker:
    def make(self, **kwargs):
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("cooldown_ops", 4)
        return CircuitBreaker("replica-a", **kwargs)

    def test_starts_closed_and_admits(self):
        breaker = self.make()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_consecutive_failures_trip_it_open(self):
        breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_a_success_resets_the_consecutive_count(self):
        breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # never 3 in a row

    def test_cooldown_is_counted_in_operations(self):
        breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        for _ in range(3):
            breaker.tick()
        assert breaker.state == "open"  # 3 of 4 cool-down ops
        breaker.tick()
        assert breaker.state == "half-open"

    def test_half_open_admits_exactly_one_probe(self):
        breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        for _ in range(4):
            breaker.tick()
        assert breaker.allow()       # the probe slot
        assert not breaker.allow()   # no second concurrent probe

    def test_verified_probe_reintegrates(self):
        breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        for _ in range(4):
            breaker.tick()
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens_for_a_full_cooldown(self):
        breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        for _ in range(4):
            breaker.tick()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        for _ in range(4):
            breaker.tick()
        assert breaker.state == "half-open"  # a fresh cool-down ran

    def test_transitions_are_ledgered_with_reasons(self):
        breaker = self.make()
        for _ in range(3):
            breaker.record_failure(reason="ConnectionResetError")
        assert len(breaker.transitions) == 1
        _, from_state, to_state, reason = breaker.transitions[0]
        assert (from_state, to_state) == ("closed", "open")
        assert "ConnectionResetError" in reason

    def test_transitions_degrade_health(self):
        health = RunHealth()
        breaker = self.make(health=health)
        for _ in range(3):
            breaker.record_failure()
        assert any("closed -> open" in note
                   for note in health.degradations)

    def test_transitions_count_into_telemetry(self):
        with collect() as telemetry:
            breaker = self.make()
            for _ in range(3):
                breaker.record_failure()
        counters = telemetry.snapshot()["counters"]
        assert counters["resilience.breaker.closed_to_open"] == 1

    def test_reset_closes_from_any_state(self):
        breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        breaker.reset("clean scrub pass")
        assert breaker.state == "closed"
        assert breaker.allow()
        assert breaker.transitions[-1][3] == "clean scrub pass"

    def test_reset_while_closed_is_silent(self):
        breaker = self.make()
        breaker.reset()
        assert breaker.transitions == []

    def test_replay_transitions_at_identical_operation_counts(self):
        """Same op sequence, any host speed: identical transitions."""
        def drive(breaker):
            for _ in range(3):
                breaker.tick()
                breaker.record_failure()
            for _ in range(5):
                breaker.tick()
            breaker.tick()
            if breaker.allow():
                breaker.record_success()
            return [(op, f, t) for op, f, t, _ in breaker.transitions]

        assert drive(self.make()) == drive(self.make())

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", cooldown_ops=0)


class TestResilienceController:
    def test_breakers_are_keyed_by_replica_position(self):
        """``sub()`` children share their parent replica's breaker."""
        controller = ResilienceController()
        mux = MultiplexBackend(
            [MemoryBackend(), MemoryBackend()], resilience=controller
        )
        objects = mux.sub("objects")
        shards = mux.sub("shards")
        breaker = controller.breaker_for(objects.children[0], 0)
        assert controller.breaker_for(shards.children[0], 0) is breaker
        assert controller.breaker_for(shards.children[1], 1) is not breaker

    def test_tick_advances_every_registered_breaker(self):
        controller = ResilienceController(failure_threshold=1,
                                          cooldown_ops=2)
        breaker = controller.breaker_for(MemoryBackend(), 0)
        breaker.record_failure()
        controller.tick()
        controller.tick()
        assert breaker.state == "half-open"

    def test_attach_health_reaches_existing_breakers(self):
        controller = ResilienceController(failure_threshold=1)
        breaker = controller.breaker_for(MemoryBackend(), 0)
        health = RunHealth()
        controller.attach_health(health)
        breaker.record_failure()
        assert health.degradations

    def test_reintegrate_closes_every_breaker(self):
        controller = ResilienceController(failure_threshold=1)
        a = controller.breaker_for(MemoryBackend(), 0)
        b = controller.breaker_for(MemoryBackend(), 1)
        a.record_failure()
        b.record_failure()
        controller.reintegrate("scrub verified")
        assert a.state == b.state == "closed"

    def test_retry_policy_inherits_seed_and_clock(self):
        clock = ManualClock()
        controller = ResilienceController(clock=clock, seed=11)
        policy = controller.retry_policy("guard", max_attempts=4)
        assert policy.seed == 11
        assert policy.clock is clock
        assert policy.max_attempts == 4

    def test_stats_lists_breakers_and_spool(self, tmp_path):
        from repro.store.spool import WriteSpool

        controller = ResilienceController(
            spool=WriteSpool(tmp_path / "spool"), failure_threshold=1
        )
        controller.breaker_for(MemoryBackend(), 0).record_failure()
        stats = controller.stats()
        assert stats["breakers"][0]["state"] == "open"
        assert stats["spool"]["entries"] == 0


class TestMultiplexerQuarantine:
    """The breaker layer threaded through the read/write paths."""

    def make_mux(self, dead_kind="eio", **controller_kwargs):
        controller_kwargs.setdefault("failure_threshold", 3)
        controller_kwargs.setdefault("cooldown_ops", 4)
        controller = ResilienceController(**controller_kwargs)
        healthy = MemoryBackend()
        flaky_inner = MemoryBackend()
        key = stored(healthy)
        stored(flaky_inner)
        dead = FaultyBackend(flaky_inner, always(dead_kind))
        mux = MultiplexBackend([dead, healthy], resilience=controller)
        return mux, controller, dead, healthy, key

    def test_reads_fall_through_and_trip_the_breaker(self):
        mux, controller, dead, _, key = self.make_mux()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for _ in range(3):
                assert mux.get_frame(key)  # healthy replica serves
        assert controller.breaker_for(dead, 0).state == "open"

    def test_quarantined_replica_is_not_reprobed(self):
        mux, controller, dead, _, key = self.make_mux()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for _ in range(3):
                mux.get_frame(key)
        injected_so_far = len(dead.plan.log)
        mux.get_frame(key)  # quarantined: the dead replica sees nothing
        assert len(dead.plan.log) == injected_so_far

    def test_cooldown_probe_reintegrates_a_healed_replica(self):
        # The fault plan dries up after 3 injections: the replica
        # "heals" exactly when the probe arrives.
        mux, controller, dead, _, key = self.make_mux()
        dead.plan.max_faults = 3
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for _ in range(3):
                mux.get_frame(key)
        breaker = controller.breaker_for(dead, 0)
        assert breaker.state == "open"
        for _ in range(3):
            mux.get_frame(key)  # each op ticks the cool-down
        assert breaker.state == "open"  # 3 of 4 cool-down ops
        # The 4th op completes the cool-down (half-open) and spends
        # the probe in the same read: healed, verifies, closes.
        mux.get_frame(key)
        assert breaker.state == "closed"
        states = [(f, t) for _, f, t, _ in breaker.transitions]
        assert states == [("closed", "open"), ("open", "half-open"),
                          ("half-open", "closed")]

    def test_failed_probe_requarantines(self):
        mux, controller, dead, _, key = self.make_mux()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for _ in range(3):
                mux.get_frame(key)
            for _ in range(4):
                mux.get_frame(key)
            mux.get_frame(key)  # probe fails: still injecting
        breaker = controller.breaker_for(dead, 0)
        assert breaker.state == "open"

    def test_writes_trip_the_breaker_too(self):
        controller = ResilienceController(failure_threshold=3)
        dead = FaultyBackend(MemoryBackend(), always("erofs"))
        healthy = MemoryBackend()
        mux = MultiplexBackend([dead, healthy], resilience=controller)
        frame = frame_object(b"written payload")
        key = hashlib.sha256(b"written payload").hexdigest()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for _ in range(3):
                mux.put_frame(key, frame, overwrite=True)
        assert controller.breaker_for(dead, 0).state == "open"
        assert healthy.contains(key)  # the healthy replica kept every copy

    def test_without_a_controller_behaviour_is_legacy(self):
        healthy = MemoryBackend()
        key = stored(healthy)
        dead = FaultyBackend(MemoryBackend(), always("eio"))
        stored(dead.inner)
        mux = MultiplexBackend([dead, healthy])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for _ in range(5):
                assert mux.get_frame(key)
        # No breaker: the dead replica was probed on every read.
        assert len(dead.plan.log) == 5

    def test_namespace_children_share_breakers(self):
        """Failures across namespaces accumulate on one breaker."""
        mux, controller, dead, _, key = self.make_mux()
        objects = mux.sub("objects")
        shards = mux.sub("shards")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with pytest.raises(KeyError):
                objects.get_frame(key)   # failure 1 on replica 0
            with pytest.raises(KeyError):
                shards.get_frame(key)    # failure 2, same breaker
            with pytest.raises(KeyError):
                objects.get_frame(key)   # failure 3: open
        assert len(controller.breakers) == 2  # one per replica, not per ns
        assert controller.breaker_for(dead, 0).state == "open"

    def test_resilience_stats_surface_through_the_mux(self):
        mux, controller, dead, _, key = self.make_mux()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for _ in range(3):
                mux.get_frame(key)
        stats = mux.resilience_stats()
        assert any(entry["state"] == "open" for entry in stats["breakers"])
        assert MultiplexBackend([MemoryBackend()]).resilience_stats() is None
