"""Backend conformance: every implementation honours the same contract.

One parametrized suite drives local, memory, HTTP, multiplexed, and
striped backends through the frame-store contract (roundtrip, miss
semantics, namespacing, counters, deterministic key walks), plus the
behaviours only some kinds have: the HTTP server refusing corrupt
frames at both ends, the resilient multiplexer degrading to a healthy
replica with one warning, and the URL grammar that composes them.
"""

from __future__ import annotations

import hashlib
import threading

import pytest

from repro.store.backends import (
    READONLY_PREFIX,
    STRIPE_PREFIX,
    backend_schemes,
    open_backend,
    open_store_url,
)
from repro.store.backends.base import Backend, ReadOnlyError, check_key
from repro.store.backends.local import LocalBackend
from repro.store.backends.memory import MemoryBackend, named_region, reset_regions
from repro.store.backends.multiplex import (
    MultiplexBackend,
    ReadOnlyBackend,
    StripingBackend,
)
from repro.store.backends.remote import HTTPBackend
from repro.store.api.client import RemoteStoreError, StoreClient
from repro.store.api.server import serve_store
from repro.store.framing import IntegrityError, frame_object, unframe_object


def key_for(payload):
    return hashlib.sha256(payload).hexdigest()


def make_frame(payload=b"hello, frames"):
    return key_for(payload), frame_object(payload)


@pytest.fixture
def http_store(tmp_path):
    """An in-thread store server over a local root; yields (url, root)."""
    root = tmp_path / "served"
    server = serve_store(backend=LocalBackend(root), port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server.url, root
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


BACKEND_KINDS = ["local", "memory", "http", "multiplex", "striping"]


@pytest.fixture(params=BACKEND_KINDS)
def backend(request, tmp_path, http_store):
    url, _ = http_store
    if request.param == "local":
        made = LocalBackend(tmp_path / "local")
    elif request.param == "memory":
        made = MemoryBackend()
    elif request.param == "http":
        made = HTTPBackend(url)
    elif request.param == "multiplex":
        made = MultiplexBackend([
            LocalBackend(tmp_path / "rep0"), LocalBackend(tmp_path / "rep1"),
        ])
    else:
        made = StripingBackend([
            LocalBackend(tmp_path / "stripe0"),
            LocalBackend(tmp_path / "stripe1"),
        ])
    yield made
    made.close()


class TestConformance:
    def test_roundtrip_preserves_frames(self, backend):
        key, frame = make_frame()
        assert backend.put_frame(key, frame)
        assert backend.get_frame(key) == frame
        payload, algorithm = unframe_object(backend.get_frame(key))
        assert payload == b"hello, frames"
        assert algorithm == "crc32-aal5"

    def test_missing_key_raises_keyerror(self, backend):
        with pytest.raises(KeyError):
            backend.get_frame("deadbeef" * 4)
        assert not backend.contains("deadbeef" * 4)

    def test_overwrite_false_skips_existing(self, backend):
        key, frame = make_frame()
        assert backend.put_frame(key, frame)
        assert backend.put_frame(key, frame, overwrite=False) is False

    def test_delete_is_idempotent(self, backend):
        key, frame = make_frame()
        backend.put_frame(key, frame)
        assert backend.delete(key) is True
        assert backend.delete(key) is False
        assert not backend.contains(key)

    def test_keys_walk_is_sorted(self, backend):
        keys = []
        for i in range(8):
            key, frame = make_frame(b"payload-%d" % i)
            backend.put_frame(key, frame)
            keys.append(key)
        assert list(backend.keys()) == sorted(keys)
        assert set(iter(backend)) == set(keys)

    def test_size_matches_frame_length(self, backend):
        key, frame = make_frame(b"sized payload")
        backend.put_frame(key, frame)
        assert backend.size(key) == len(frame)
        with pytest.raises(KeyError):
            backend.size("deadbeef" * 4)

    def test_namespaces_are_isolated(self, backend):
        key, frame = make_frame(b"namespaced")
        objects = backend.sub("objects")
        shards = backend.sub("shards")
        objects.put_frame(key, frame)
        assert objects.contains(key)
        assert not shards.contains(key)
        with pytest.raises(KeyError):
            shards.get_frame(key)

    def test_invalid_keys_are_rejected(self, backend):
        for bad in ("../../etc/passwd", "short", "NOTHEX!", "a" * 5):
            with pytest.raises(ValueError):
                backend.get_frame(bad)

    def test_counters_track_operations(self, backend):
        key, frame = make_frame(b"counted")
        backend.put_frame(key, frame)
        backend.get_frame(key)
        with pytest.raises(KeyError):
            backend.get_frame("deadbeef" * 4)
        counters = backend.counters
        assert counters.puts == 1
        assert counters.gets == 2
        assert counters.hits == 1
        assert counters.misses == 1
        assert counters.bytes_written == len(frame)
        assert counters.bytes_read == len(frame)

    def test_stats_reports_objects_and_bytes(self, backend):
        key, frame = make_frame(b"stats payload")
        backend.put_frame(key, frame)
        stats = backend.stats()
        assert stats["objects"] == 1
        assert stats["bytes"] == len(frame)
        assert stats["backend"]


class TestMemoryRegions:
    def test_named_regions_share_contents(self):
        reset_regions()
        try:
            key, frame = make_frame(b"shared")
            MemoryBackend(named_region("alpha")).put_frame(key, frame)
            assert MemoryBackend(named_region("alpha")).get_frame(key) == frame
            assert not MemoryBackend(named_region("beta")).contains(key)
        finally:
            reset_regions()

    def test_anonymous_backends_are_isolated(self):
        key, frame = make_frame(b"private")
        MemoryBackend().put_frame(key, frame)
        assert not MemoryBackend().contains(key)


class TestHTTPBoundary:
    def test_server_refuses_corrupt_put(self, http_store):
        url, _ = http_store
        backend = HTTPBackend(url)
        key, frame = make_frame(b"to corrupt")
        mangled = bytearray(frame)
        mangled[0] ^= 0xFF
        with pytest.raises(IntegrityError):
            backend.put_frame(key, bytes(mangled))
        assert not backend.contains(key)

    def test_server_refuses_to_serve_rotted_frames(self, http_store):
        url, root = http_store
        backend = HTTPBackend(url)
        key, frame = make_frame(b"rots on disk")
        backend.put_frame(key, frame)
        path = LocalBackend(root).sub("default").path_for(key)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x10
        path.write_bytes(bytes(blob))
        with pytest.raises(IntegrityError):
            backend.get_frame(key)
        assert backend.counters.errors >= 1

    def test_ping_and_describe(self, http_store):
        url, _ = http_store
        backend = HTTPBackend(url)
        assert backend.ping()["protocol"] == "repro-store/1"
        assert url in backend.describe()

    def test_client_maps_transport_failures(self):
        client = StoreClient("http://127.0.0.1:9", timeout=0.2)
        with pytest.raises(RemoteStoreError):
            client.ping()
        assert issubclass(RemoteStoreError, OSError)


class _BrokenBackend(Backend):
    kind = "broken"

    def describe(self):
        return "broken()"

    def sub(self, namespace):
        return self

    def _get_frame(self, key):
        raise OSError("replica down")

    def _put_frame(self, key, frame):
        raise OSError("replica down")

    def _delete(self, key):
        raise OSError("replica down")

    def _contains(self, key):
        raise OSError("replica down")

    def _keys(self):
        return iter(())

    def _size(self, key):
        raise OSError("replica down")


class TestResilientMultiplexer:
    def test_reads_degrade_to_the_healthy_replica(self, tmp_path):
        healthy = LocalBackend(tmp_path / "healthy")
        key, frame = make_frame(b"resilient")
        healthy.put_frame(key, frame)
        mux = MultiplexBackend([_BrokenBackend(), healthy])
        with pytest.warns(RuntimeWarning, match="replica"):
            assert mux.get_frame(key) == frame
        # The second read stays quiet: one warning per failing replica.
        assert mux.get_frame(key) == frame

    def test_corrupt_replica_falls_through_to_clean_one(self, tmp_path):
        first = LocalBackend(tmp_path / "first")
        second = LocalBackend(tmp_path / "second")
        key, frame = make_frame(b"one replica rots")
        mux = MultiplexBackend([first, second])
        mux.put_frame(key, frame)
        path = first.path_for(key)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x10
        path.write_bytes(bytes(blob))
        assert mux.get_frame(key) == frame

    def test_all_replicas_absent_is_a_miss(self, tmp_path):
        mux = MultiplexBackend([
            LocalBackend(tmp_path / "a"), LocalBackend(tmp_path / "b"),
        ])
        with pytest.raises(KeyError):
            mux.get_frame("deadbeef" * 4)

    def test_writes_reach_every_replica(self, tmp_path):
        first = LocalBackend(tmp_path / "a")
        second = LocalBackend(tmp_path / "b")
        key, frame = make_frame(b"fan out")
        MultiplexBackend([first, second]).put_frame(key, frame)
        assert first.get_frame(key) == frame
        assert second.get_frame(key) == frame


class TestStriping:
    def test_each_key_lives_on_exactly_one_stripe(self, tmp_path):
        stripes = [LocalBackend(tmp_path / ("s%d" % i)) for i in range(3)]
        striped = StripingBackend(stripes)
        keys = []
        for i in range(24):
            key, frame = make_frame(b"striped-%d" % i)
            striped.put_frame(key, frame)
            keys.append(key)
        copies = [sum(1 for s in stripes if s.contains(k)) for k in keys]
        assert copies == [1] * len(keys)
        assert sum(len(list(s.keys())) for s in stripes) == len(set(keys))
        assert list(striped.keys()) == sorted(set(keys))


class TestReadOnly:
    def test_reads_pass_and_writes_fail(self, tmp_path):
        inner = LocalBackend(tmp_path / "ro")
        key, frame = make_frame(b"frozen")
        inner.put_frame(key, frame)
        guard = ReadOnlyBackend(inner)
        assert guard.get_frame(key) == frame
        with pytest.raises(ReadOnlyError):
            guard.put_frame(key, frame)
        with pytest.raises(ReadOnlyError):
            guard.delete(key)
        assert inner.contains(key)


class TestURLGrammar:
    def test_schemes_are_enumerable(self):
        assert backend_schemes() == ("file", "http", "memory")

    def test_plain_path_opens_local(self, tmp_path):
        backend = open_backend(str(tmp_path / "plain"))
        assert backend.kind == "local"

    def test_file_url_opens_local(self, tmp_path):
        backend = open_backend("file://" + str(tmp_path / "via-url"))
        assert backend.kind == "local"

    def test_memory_url_opens_memory(self):
        reset_regions()
        try:
            backend = open_backend("memory://grammar-test")
            assert backend.kind == "memory"
        finally:
            reset_regions()

    def test_http_url_opens_remote(self, http_store):
        url, _ = http_store
        backend = open_backend(url)
        assert backend.kind == "http"
        backend.close()

    def test_readonly_prefix_wraps(self, tmp_path):
        backend = open_backend(READONLY_PREFIX + str(tmp_path / "ro"))
        assert backend.kind == "readonly"

    def test_unknown_scheme_is_rejected(self):
        with pytest.raises(ValueError):
            open_backend("ftp://nope")

    def test_comma_list_builds_a_multiplexer(self, tmp_path):
        backend = open_store_url(
            "%s,%s" % (tmp_path / "r0", tmp_path / "r1")
        )
        assert backend.kind == "multiplex"
        assert len(backend.children) == 2

    def test_stripe_prefix_builds_striping(self, tmp_path):
        backend = open_store_url(
            STRIPE_PREFIX + "%s,%s" % (tmp_path / "s0", tmp_path / "s1")
        )
        assert backend.kind == "striping"

    def test_key_check_normalizes_case(self):
        assert check_key("DEADBEEF") == "deadbeef"
