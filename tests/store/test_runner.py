"""Tests for resumable sharded splice runs through the store."""

from __future__ import annotations

from repro.core.experiment import run_splice_experiment
from repro.corpus.profiles import build_filesystem
from repro.store.runner import RunStore


def small_fs(profile="uniform", nbytes=50_000, seed=3):
    return build_filesystem(profile, nbytes, seed)


class TestStoreHook:
    def test_bit_identical_to_direct_run(self, cache_root):
        fs = small_fs()
        direct = run_splice_experiment(fs)
        stored = run_splice_experiment(fs, store=RunStore())
        assert stored.counters == direct.counters

    def test_second_run_is_all_hits(self, cache_root):
        fs = small_fs()
        store = RunStore()
        first = run_splice_experiment(fs, store=store)
        assert store.shards.stats.puts > 0
        store2 = RunStore()  # fresh counters, same root
        second = run_splice_experiment(fs, store=store2)
        assert second.counters == first.counters
        assert store2.shards.stats.puts == 0
        assert store2.shards.stats.misses == 0
        assert store2.shards.stats.hits > 0

    def test_workers_path_matches(self, cache_root):
        fs = small_fs()
        direct = run_splice_experiment(fs)
        stored = run_splice_experiment(fs, store=RunStore(), workers=2)
        assert stored.counters == direct.counters

    def test_shards_keyed_by_content_shared_across_filesystems(self, cache_root):
        # Shards are keyed by file *content*, not by filesystem name:
        # two differently-named corpora with the same bytes share work.
        from tests.conftest import make_filesystem

        spec = [("english", 6_000), ("gmon", 5_000)]
        store = RunStore()
        first = run_splice_experiment(
            make_filesystem(spec, seed=11, name="volume-a"), store=store
        )
        assert store.shards.stats.puts == 2
        second = run_splice_experiment(
            make_filesystem(spec, seed=11, name="volume-b"), store=store
        )
        assert store.shards.stats.puts == 2  # nothing recomputed
        assert first.counters == second.counters


class TestResume:
    def test_interrupted_run_resumes_from_completed_shards(self, cache_root):
        fs = small_fs(nbytes=80_000)
        store = RunStore()
        complete = run_splice_experiment(fs, store=store)

        # Simulate an interruption that lost some shards: delete half.
        digests = list(store.shards.store.digests())
        assert len(digests) >= 2
        lost = digests[: len(digests) // 2]
        for digest in lost:
            store.shards.store.delete(digest)

        resumed_store = RunStore()
        resumed = run_splice_experiment(fs, store=resumed_store)
        assert resumed.counters == complete.counters
        # Only the lost shards were recomputed.
        assert resumed_store.shards.stats.puts == len(lost)

    def test_corrupt_shard_is_evicted_and_recomputed(self, cache_root):
        fs = small_fs(nbytes=60_000)
        store = RunStore()
        complete = run_splice_experiment(fs, store=store)

        digest = next(iter(store.shards.store.digests()))
        path = store.shards.store.path_for(digest)
        blob = bytearray(path.read_bytes())
        blob[7] ^= 0x01  # a single flipped bit in a stored artifact
        path.write_bytes(bytes(blob))

        retry_store = RunStore()
        retried = run_splice_experiment(fs, store=retry_store)
        # Graceful degradation: recomputed, never a wrong answer.
        assert retried.counters == complete.counters
        assert retry_store.shards.stats.corrupt == 1
        assert retry_store.shards.stats.puts == 1

    def test_manifest_records_completion(self, cache_root):
        fs = small_fs()
        store = RunStore()
        run_splice_experiment(fs, store=store)
        manifests = list(store.manifests.store.digests())
        assert len(manifests) == 1
        manifest = store.manifests.load(manifests[0])
        assert manifest is not None
        assert manifest.finished
        assert manifest.total == len(list(fs))
        assert manifest.done == manifest.total
        assert manifest.label == fs.name

    def test_corrupt_manifest_degrades_to_fresh_run(self, cache_root):
        fs = small_fs()
        store = RunStore()
        complete = run_splice_experiment(fs, store=store)
        key = next(iter(store.manifests.store.digests()))
        path = store.manifests.store.path_for(key)
        blob = bytearray(path.read_bytes())
        blob[0] ^= 0xFF
        path.write_bytes(bytes(blob))

        again = run_splice_experiment(fs, store=RunStore())
        assert again.counters == complete.counters
