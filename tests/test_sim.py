"""Tests for the end-to-end reliable-transfer simulation."""

import pytest

from repro.corpus.generators import generate
from repro.protocols.cellstream import EarlyPacketDiscard, IndependentLoss
from repro.protocols.packetizer import ChecksumPlacement, PacketizerConfig
from repro.sim import TransferReport, simulate_file_transfer


class TestLosslessTransfer:
    def test_everything_delivered_clean(self):
        data = generate("english", 5_000, 1)
        report = simulate_file_transfer(data, IndependentLoss(0.0))
        assert report.delivered_clean == report.packets
        assert report.delivered_corrupted == 0
        assert report.transmissions == report.packets
        assert report.frames_rejected == 0
        assert report.retransmission_ratio == 1.0


class TestLossyTransfer:
    def test_retransmissions_recover_the_file(self):
        data = generate("english", 8_000, 2)
        report = simulate_file_transfer(data, IndependentLoss(0.2), seed=3)
        assert report.delivered_clean == report.packets
        assert report.gave_up == 0
        assert report.transmissions > report.packets
        assert report.frames_rejected > 0
        assert report.cells_delivered < report.cells_sent

    def test_deterministic(self):
        data = generate("gmon", 6_000, 1)
        a = simulate_file_transfer(data, IndependentLoss(0.2), seed=9)
        b = simulate_file_transfer(data, IndependentLoss(0.2), seed=9)
        assert a == b

    def test_epd_still_delivers(self):
        data = generate("english", 6_000, 4)
        report = simulate_file_transfer(
            data, EarlyPacketDiscard(IndependentLoss(0.2)), seed=5
        )
        assert report.delivered_clean == report.packets
        assert report.delivered_corrupted == 0

    def test_give_up_bound(self):
        data = generate("english", 2_000, 5)
        report = simulate_file_transfer(
            data, IndependentLoss(0.9), max_attempts=2, seed=6
        )
        assert report.gave_up > 0
        assert report.transmissions <= 2 * report.packets


class TestSilentCorruption:
    def test_crc_prevents_silent_corruption(self):
        # The bottom line: on checksum-hostile data, the TCP sum alone
        # lets corrupted packets reach the application; the AAL5 CRC
        # stops them.
        data = generate("gmon", 250_000, 3)
        without = simulate_file_transfer(
            data, IndependentLoss(0.25), use_crc=False, seed=2
        )
        with_crc = simulate_file_transfer(
            data, IndependentLoss(0.25), use_crc=True, seed=2
        )
        assert without.silent_corruption > 0
        assert with_crc.silent_corruption == 0
        assert with_crc.gave_up == 0

    def test_trailer_checksum_config(self):
        data = generate("gmon", 20_000, 7)
        config = PacketizerConfig(placement=ChecksumPlacement.TRAILER)
        report = simulate_file_transfer(
            data, IndependentLoss(0.2), config=config, seed=1
        )
        assert report.delivered_clean == report.packets
        assert report.delivered_corrupted == 0


class TestDegradedDelivery:
    def test_gave_up_marks_health_and_renders(self):
        data = generate("english", 2_000, 5)
        report = simulate_file_transfer(
            data, IndependentLoss(0.9), max_attempts=2, seed=6
        )
        assert report.gave_up > 0
        assert report.degraded
        assert report.health.eventful
        rendered = report.health.render()
        assert "gave up" in rendered
        assert "incomplete" in rendered

    def test_clean_transfer_is_not_degraded(self):
        data = generate("english", 3_000, 1)
        report = simulate_file_transfer(data, IndependentLoss(0.0))
        assert not report.degraded
        assert not report.health.eventful

    def test_add_merges_counters_and_health(self):
        data = generate("english", 2_000, 5)
        clean = simulate_file_transfer(data, IndependentLoss(0.0))
        broken = simulate_file_transfer(
            data, IndependentLoss(0.9), max_attempts=2, seed=6
        )
        merged = clean + broken
        assert merged.packets == clean.packets + broken.packets
        assert merged.gave_up == broken.gave_up
        assert merged.degraded
        assert merged.health.eventful
        assert "gave up" in merged.health.render()
        # The operands keep their own health records.
        assert not clean.health.eventful


def test_report_defaults():
    report = TransferReport()
    assert report.retransmission_ratio == 0.0
    assert report.goodput == 0.0
    assert report.silent_corruption == 0
    assert not report.degraded
