"""Assertion-rich checks of the extension experiments' reported data.

The benchmark harness asserts the headline shapes at larger sizes;
these tests pin the data-contract of each extension report at small,
fast sizes so regressions surface in the plain test run.
"""

import pytest

from repro.experiments.registry import run_experiment

SMALL = dict(fs_bytes=100_000, seed=1)


class TestErrorModels:
    @pytest.fixture(scope="class")
    def report(self):
        return run_experiment("error-models", **SMALL)

    def test_rows_complete(self, report):
        for name, row in report.data.items():
            assert {"tcp_pct", "f256_pct", "crc32_pct", "trials"} <= set(row), name
            assert row["trials"] > 0

    def test_word_swap_contrast(self, report):
        row = report.data["16-bit word swap"]
        assert row["tcp_pct"] == 0.0
        assert row["crc32_pct"] == 100.0


class TestLossModels:
    def test_models_reported(self):
        report = run_experiment("loss-models", **SMALL)
        labels = [k for k in report.data if k != "system"]
        assert len(labels) == 4
        for label in labels:
            row = report.data[label]
            assert row["p_corrupted"] >= row["p_transport_miss"] >= 0


class TestFragmentSplices:
    def test_structure(self):
        report = run_experiment("fragment-splices", **SMALL)
        for algorithm in ("tcp", "fletcher255", "fletcher256"):
            row = report.data[algorithm]
            assert row["fragment_remaining"] > 0
            assert row["fragment_pct"] >= 0
            assert row["cell_pct"] >= 0


class TestFailureLocality:
    def test_structure(self):
        report = run_experiment("failure-locality", fs_bytes=250_000, seed=1)
        data = report.data
        assert data["files"] > 10
        assert 0 <= data["top_share_pct"] <= 100
        assert len(data["worst"]) == 8
        missed = [w["missed"] for w in data["worst"]]
        assert missed == sorted(missed, reverse=True)


class TestCorpusStats:
    def test_families_reported(self):
        report = run_experiment("corpus-stats", **SMALL)
        assert "gmon" in report.data
        assert "english" in report.data
        gmon = report.data["gmon"]
        english = report.data["english"]
        assert gmon["effective_bits"] < english["effective_bits"]
        assert gmon["zero_fraction"] > 0.9
        assert english["byte_entropy"] > 3.5


class TestMssSweep:
    def test_rows_monotone_cells(self):
        report = run_experiment(
            "mss-sweep", fs_bytes=80_000, seed=1, sizes=(128, 256), sample=2_000
        )
        rows = report.data["rows"]
        assert [row["mss"] for row in rows] == [128, 256]
        assert rows[0]["cells"] < rows[1]["cells"]
        assert all(row["splices"] > 0 for row in rows)


class TestMonteCarloReport:
    def test_span_distribution_reported(self):
        report = run_experiment("montecarlo", fs_bytes=80_000, seed=1, trials=30)
        data = report.data
        assert sum(data["corrupted_by_span"].values()) == data["mc_corrupted"]
        assert data["undetected"] == 0
