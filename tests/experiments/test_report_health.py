"""RunHealth in reports: JSON attachment and Markdown rendering."""

from __future__ import annotations

import json

import pytest

from repro.core.supervisor import RunHealth
from repro.experiments.markdown import _health_line
from repro.experiments.registry import run_experiment
from repro.experiments.report import ExperimentReport


class TestReportSerialization:
    def test_health_round_trips(self):
        health = RunHealth(retries=2, evictions=1)
        report = ExperimentReport("t", "Title", "text", {"x": 1},
                                  health=health.to_dict())
        clone = ExperimentReport.from_json(report.to_json())
        assert clone.health == health.to_dict()
        assert RunHealth.from_dict(clone.health) == health

    def test_clean_reports_serialize_without_health_key(self):
        # Byte-stability: reports from uneventful runs must serialize
        # exactly as they did before the health field existed.
        report = ExperimentReport("t", "Title", "text", {"x": 1})
        payload = json.loads(report.to_json())
        assert "health" not in payload
        assert ExperimentReport.from_json(report.to_json()).health is None


class TestMarkdownHealthLine:
    def test_no_health_no_line(self):
        assert _health_line(ExperimentReport("t", "T", "x")) is None

    def test_eventful_health_renders_summary(self):
        health = RunHealth(retries=3, evictions=1)
        report = ExperimentReport("t", "T", "x", health=health.to_dict())
        line = _health_line(report)
        assert line == "*(run health: 3 retries, 1 eviction)*"

    def test_foreign_health_payload_is_ignored(self):
        report = ExperimentReport("t", "T", "x",
                                  health={"not-a-field": True})
        assert _health_line(report) is None


@pytest.mark.chaos
class TestRegistryHealthIntegration:
    def test_eventful_run_attaches_health_to_report(self, tmp_path):
        """Corrupt a cached shard; the rerun's report says it evicted."""
        from repro.store.runner import RunStore

        cache = RunStore(tmp_path / "store")
        kwargs = dict(fs_bytes=60_000, seed=2)
        first = run_experiment("table7", cache=cache, **kwargs)
        assert first.health is None  # a clean run stays clean

        # Flip one byte in one cached shard, then force a recompute by
        # clearing the experiment-level result cache.
        shard_path = next(
            p for p in (tmp_path / "store" / "shards").rglob("*") if p.is_file()
        )
        blob = bytearray(shard_path.read_bytes())
        blob[4] ^= 0x08
        shard_path.write_bytes(bytes(blob))
        cache.results.store.clear()

        second = run_experiment("table7", cache=cache, **kwargs)
        assert second.text == first.text  # corruption cost time, not truth
        assert second.health is not None
        health = RunHealth.from_dict(second.health)
        assert health.evictions >= 1
        line = _health_line(second)
        assert line is not None and "eviction" in line

        # The cached copy of the eventful report keeps its record.
        third = run_experiment("table7", cache=cache, **kwargs)
        assert third.health == second.health
