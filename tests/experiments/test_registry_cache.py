"""Integration tests: the experiment registry against the result cache."""

from __future__ import annotations

import pytest

from repro.experiments.registry import run_experiment
from repro.store.runner import RunStore


@pytest.fixture(autouse=True)
def cache_root(tmp_path, monkeypatch):
    root = tmp_path / "cache-root"
    monkeypatch.setenv("REPRO_CHECKSUMS_CACHE", str(root))
    return root


class TestCachedExperiments:
    @pytest.mark.parametrize(
        "experiment_id,kwargs",
        [
            ("table4", {"fs_bytes": 60_000, "seed": 2}),
            ("corpus-stats", {"fs_bytes": 60_000, "seed": 2}),
        ],
    )
    def test_cache_hit_is_bit_identical_to_cold_run(self, experiment_id, kwargs):
        cold = run_experiment(experiment_id, **kwargs)
        store = RunStore()
        warm_miss = run_experiment(experiment_id, cache=store, **kwargs)
        assert store.results.stats.misses == 1
        warm_hit = run_experiment(experiment_id, cache=store, **kwargs)
        assert store.results.stats.hits == 1
        assert warm_hit.text == warm_miss.text == cold.text
        assert warm_hit.to_json() == warm_miss.to_json() == cold.to_json()

    def test_different_parameters_never_share_entries(self):
        store = RunStore()
        a = run_experiment("table4", fs_bytes=60_000, seed=2, cache=store)
        b = run_experiment("table4", fs_bytes=60_000, seed=3, cache=store)
        assert store.results.stats.misses == 2
        assert a.text != b.text

    def test_flipped_byte_triggers_recompute_not_wrong_answer(self):
        store = RunStore()
        kwargs = {"fs_bytes": 60_000, "seed": 2}
        cold = run_experiment("table4", cache=store, **kwargs)

        digest = next(iter(store.results.store.digests()))
        path = store.results.store.path_for(digest)
        blob = bytearray(path.read_bytes())
        blob[12] ^= 0x01
        path.write_bytes(bytes(blob))

        recomputed = run_experiment("table4", cache=store, **kwargs)
        assert store.results.stats.corrupt == 1
        assert recomputed.text == cold.text
        # ... and the entry was rewritten, so the next call hits again.
        third = run_experiment("table4", cache=store, **kwargs)
        assert store.results.stats.hits == 1
        assert third.text == cold.text


class TestWorkersPlumbing:
    def test_workers_forwarded_to_splice_tables(self):
        direct = run_experiment("table1", fs_bytes=40_000, seed=3)
        fanned = run_experiment("table1", fs_bytes=40_000, seed=3, workers=2)
        assert fanned.text == direct.text

    def test_workers_ignored_by_experiments_without_the_kwarg(self):
        # table4 does not accept workers; run_experiment must not crash.
        report = run_experiment("table4", fs_bytes=40_000, seed=2, workers=4)
        assert report.experiment_id == "table4"

    def test_workers_do_not_enter_cache_keys(self):
        store = RunStore()
        run_experiment("table1", fs_bytes=40_000, seed=3, cache=store)
        run_experiment("table1", fs_bytes=40_000, seed=3, cache=store, workers=2)
        assert store.results.stats.hits == 1

    def test_runstore_cache_also_shards_splice_runs(self):
        store = RunStore()
        run_experiment("table1", fs_bytes=40_000, seed=3, cache=store)
        assert store.shards.stats.puts > 0  # store= hook reached the runner
        assert len(list(store.manifests.store.digests())) > 0
