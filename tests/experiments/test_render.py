"""Tests for the text rendering helpers."""

from repro.experiments.render import TextTable, ascii_series, fmt_count, fmt_pct


class TestFormatters:
    def test_fmt_pct_zero(self):
        assert fmt_pct(0) == "0"

    def test_fmt_pct_regular(self):
        assert fmt_pct(0.1234) == "0.1234%"

    def test_fmt_pct_tiny_goes_scientific(self):
        assert "e" in fmt_pct(1e-7)

    def test_fmt_count(self):
        assert fmt_count(1234567) == "1,234,567"


class TestTextTable:
    def test_alignment(self):
        table = TextTable(["name", "value"])
        table.add_row("a", 1)
        table.add_row("long-name", 12345)
        out = table.render()
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) for line in lines)
        assert lines[2].endswith("1")

    def test_indent(self):
        table = TextTable(["h"])
        table.add_row("x")
        assert table.render(indent="  ").startswith("  h")


class TestAsciiSeries:
    def test_renders_without_error(self):
        out = ascii_series([("a", [1.0, 0.1, 0.01]), ("b", [0.5, 0.5, 0.5])],
                           width=20, height=5, title="demo")
        assert "demo" in out
        assert "a" in out and "b" in out
        assert out.count("\n") >= 6

    def test_empty_series(self):
        assert "(no data)" in ascii_series([("a", [0.0])], title="t")

    def test_linear_mode(self):
        out = ascii_series([("a", [0.1, 0.9])], logy=False, width=10, height=4)
        assert "|" in out
