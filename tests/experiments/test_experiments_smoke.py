"""Smoke tests: every registered experiment runs and reports sane data.

These run at deliberately tiny corpus sizes; the full-size claims are
exercised by ``tests/test_paper_claims.py`` and the benchmark harness.
"""

import pytest

from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_experiment
from repro.experiments.report import ExperimentReport

TINY = {"fs_bytes": 150_000, "seed": 1}


def kwargs_for(experiment_id):
    return {} if experiment_id == "epd" else dict(TINY)


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_runs(experiment_id):
    report = run_experiment(experiment_id, **kwargs_for(experiment_id))
    assert isinstance(report, ExperimentReport)
    assert report.experiment_id == experiment_id
    assert report.text.strip()
    assert report.data
    assert experiment_id in str(report)


def test_registry_lists_all_tables_and_figures():
    ids = experiment_ids()
    for required in ["table%d" % i for i in range(1, 11)] + ["figure2", "figure3"]:
        assert required in ids


def test_unknown_experiment():
    with pytest.raises(KeyError):
        run_experiment("table99")


class TestReportedShapes:
    def test_table4_rows_have_three_columns(self):
        report = run_experiment("table4", **TINY)
        for row in report.data["rows"]:
            assert {"k", "uniform_pct", "predicted_pct", "measured_pct"} <= set(row)

    def test_table9_reports_improvement(self):
        report = run_experiment("table9", fs_bytes=200_000, seed=1)
        assert all(row["improvement"] > 1 for row in report.data["rows"])

    def test_figure2_series_lengths(self):
        report = run_experiment("figure2", **TINY)
        assert len(report.data["pdf_k1"]) == 65
        assert len(report.data["predict_k2"]) == 65
        assert report.data["pmax_pct"] > 0

    def test_figure3_match_ordering(self):
        report = run_experiment("figure3", **TINY)
        assert set(report.data["match_pct"]) == {"IP/TCP", "F255", "F256"}

    def test_epd_reports_zero(self):
        report = run_experiment("epd")
        assert report.data["reachable_splices"] == 0
