"""Tests for the Markdown report generator."""

import pytest

from repro.experiments.markdown import DEFAULT_SECTIONS, generate_markdown_report
from repro.experiments.registry import EXPERIMENTS


def test_sections_cover_all_experiments():
    listed = {eid for _, ids in DEFAULT_SECTIONS for eid in ids}
    assert listed == set(EXPERIMENTS)


def test_restricted_report():
    document = generate_markdown_report(["epd"], fs_bytes=50_000)
    assert document.startswith("# Reproduction report")
    assert "### `epd`" in document
    assert "### `table1`" not in document
    assert "```" in document


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError, match="nosuch"):
        generate_markdown_report(["nosuch"])


def test_small_multi_section_report():
    document = generate_markdown_report(
        ["table7", "uniformity"], fs_bytes=80_000, seed=1
    )
    assert "## Remedies" in document
    assert "## Extensions" in document
    assert "regenerated in" in document
