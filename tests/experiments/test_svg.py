"""Tests for the SVG figure writer."""

import xml.dom.minidom

import pytest

from repro.experiments.registry import run_experiment
from repro.experiments.report import ExperimentReport
from repro.experiments.svg import figure_svg, render_line_chart, write_figure_svg


def parse(svg_text):
    return xml.dom.minidom.parseString(svg_text)


class TestRenderLineChart:
    def test_valid_svg_with_series(self):
        svg = render_line_chart(
            [("a", [1.0, 0.5, 0.1]), ("b", [0.2, 0.2, 0.2])],
            title="demo", x_label="x", y_label="y",
        )
        document = parse(svg)
        assert document.documentElement.tagName == "svg"
        assert len(document.getElementsByTagName("polyline")) == 2
        assert "demo" in svg

    def test_linear_mode(self):
        svg = render_line_chart([("a", [0.0, 1.0, 2.0])], logy=False)
        parse(svg)

    def test_log_mode_skips_zeros(self):
        svg = render_line_chart([("a", [1.0, 0.0, 0.01])])
        document = parse(svg)
        polyline = document.getElementsByTagName("polyline")[0]
        assert len(polyline.getAttribute("points").split()) == 2

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            render_line_chart([("a", [0.0])])

    def test_escapes_labels(self):
        svg = render_line_chart([("<evil>", [1.0])], title="a&b")
        assert "<evil>" not in svg.replace("&lt;evil&gt;", "")
        parse(svg)


class TestFigureSvg:
    def test_figure2(self):
        report = run_experiment("figure2", fs_bytes=120_000, seed=1)
        document = parse(figure_svg(report))
        # k=1,2,4,5 + predict + uniform = 6 series.
        assert len(document.getElementsByTagName("polyline")) == 6

    def test_figure3(self):
        report = run_experiment("figure3", fs_bytes=120_000, seed=1)
        document = parse(figure_svg(report))
        assert len(document.getElementsByTagName("polyline")) == 3

    def test_unknown_report_rejected(self):
        with pytest.raises(ValueError):
            figure_svg(ExperimentReport("table1", "t", "x", {}))

    def test_write_to_file(self, tmp_path):
        report = run_experiment("figure3", fs_bytes=120_000, seed=1)
        path = tmp_path / "fig3.svg"
        assert write_figure_svg(report, str(path)) == str(path)
        parse(path.read_text())
