"""Tests for corpus transforms (compression, word shifting)."""

import zlib

import numpy as np

from repro.analysis.distribution import distribution_over
from repro.corpus.transforms import add_constant_to_words, compress_filesystem
from tests.conftest import make_filesystem


class TestCompression:
    def test_roundtrip_content(self):
        fs = make_filesystem([("english", 10_000)])
        compressed = compress_filesystem(fs)
        assert zlib.decompress(compressed.files[0].data) == fs.files[0].data

    def test_compression_shrinks_text(self):
        fs = make_filesystem([("english", 20_000), ("c-source", 20_000)])
        compressed = compress_filesystem(fs)
        assert compressed.total_bytes < 0.6 * fs.total_bytes

    def test_compression_uniformises_checksums(self):
        fs = make_filesystem([("gmon", 30_000), ("english", 30_000)])
        before = distribution_over(fs, "internet", 1)
        after = distribution_over(compress_filesystem(fs), "internet", 1)
        assert after.pmax < before.pmax / 5
        assert after.match_probability() < before.match_probability() / 10

    def test_names_and_kinds_marked(self):
        fs = make_filesystem([("english", 1_000)])
        compressed = compress_filesystem(fs)
        assert compressed.files[0].name.endswith(".z")
        assert compressed.files[0].kind == "english+compressed"
        assert compressed.name.endswith("-compressed")


class TestAddConstant:
    def test_size_preserved(self):
        fs = make_filesystem([("english", 3_001)])  # odd size
        shifted = add_constant_to_words(fs, 1)
        assert shifted.total_bytes == fs.total_bytes

    def test_words_shifted(self):
        fs = make_filesystem([("gmon", 1_000)])
        shifted = add_constant_to_words(fs, 5)
        original = np.frombuffer(fs.files[0].data[:2], ">u2")[0]
        moved = np.frombuffer(shifted.files[0].data[:2], ">u2")[0]
        assert (int(original) + 5) & 0xFFFF == int(moved)

    def test_odd_tail_byte_untouched(self):
        fs = make_filesystem([("english", 101)])
        shifted = add_constant_to_words(fs, 1)
        assert shifted.files[0].data[-1] == fs.files[0].data[-1]

    def test_distribution_is_permuted_not_reshaped(self):
        # Section 6.1: adding a constant permutes the checksum value
        # distribution (compared over ones-complement residue classes,
        # where each cell's sum shifts by 24 * constant).
        from repro.analysis.convolution import class_pmf
        from repro.analysis.distribution import cell_checksum_values

        fs = make_filesystem([("gmon", 48 * 500)])
        shifted = add_constant_to_words(fs, 1)
        before = class_pmf(cell_checksum_values(fs))
        after = class_pmf(cell_checksum_values(shifted))
        assert np.allclose(np.roll(before, 24), after)

    def test_zero_constant_identity(self):
        fs = make_filesystem([("english", 500)])
        shifted = add_constant_to_words(fs, 0)
        assert shifted.files[0].data == fs.files[0].data
