"""Tests for the synthetic file-family generators."""

import numpy as np
import pytest

from repro.corpus.generators import GENERATORS, generate


@pytest.mark.parametrize("kind", sorted(GENERATORS))
class TestAllGenerators:
    def test_exact_size(self, kind):
        assert len(generate(kind, 4096, 1)) == 4096

    def test_deterministic(self, kind):
        assert generate(kind, 2048, 5) == generate(kind, 2048, 5)

    def test_seed_sensitivity(self, kind):
        a = generate(kind, 4096, 5)
        b = generate(kind, 4096, 6)
        assert a != b

    def test_small_sizes(self, kind):
        for size in (1, 48, 100):
            assert len(generate(kind, size, 2)) == size


def test_unknown_kind_rejected():
    with pytest.raises(KeyError, match="english"):
        generate("nosuch", 100, 1)


def test_generator_accepts_rng_object(rng):
    data = generate("english", 500, rng)
    assert len(data) == 500


class TestFamilyProperties:
    def test_english_is_ascii_text(self):
        data = generate("english", 5000, 3)
        assert max(data) < 128
        # Realistic letter skew: 'e' among the most common letters.
        counts = np.bincount(np.frombuffer(data, np.uint8), minlength=128)
        letters = {chr(c): int(counts[c]) for c in range(ord("a"), ord("z") + 1)}
        assert letters["e"] >= sorted(letters.values())[-5]

    def test_english_contains_repeats(self):
        # Boilerplate header means two files share a long prefix.
        a = generate("english", 2000, 1)
        b = generate("english", 2000, 2)
        assert a[:200] == b[:200]

    def test_c_source_structure(self):
        data = generate("c-source", 5000, 3).decode("ascii")
        assert data.startswith("/*")
        assert "#include" in data
        assert "\t" in data

    def test_c_source_repeats_functions(self):
        data = generate("c-source", 20000, 3)
        # Some 200-byte chunk must appear at least twice.
        probe = data[1000:1200]
        assert data.count(probe) >= 1

    def test_executable_magic_and_zeros(self):
        data = generate("executable", 20000, 3)
        assert data[:4] == b"\x7fELF"
        assert data.count(0) > 1000

    def test_pbm_all_bytes_binary(self):
        data = generate("pbm-plot", 20000, 3)
        header_end = data.index(b"255\n") + 4
        body = set(data[header_end:])
        assert body <= {0, 255}
        assert {0, 255} <= body

    def test_hex_postscript_line_period(self):
        data = generate("hex-postscript", 20000, 3)
        lines = data.split(b"\n")
        widths = {len(line) for line in lines[3:-1] if line}
        # Hex rows are 2 * (power-of-two) characters wide.
        assert len(widths) == 1
        width = widths.pop() // 2
        assert width & (width - 1) == 0

    def test_binhex_line_length(self):
        data = generate("binhex", 5000, 3)
        # Skip the banner line and the colon-prefixed first row, and
        # the possibly truncated final row.
        lines = data.split(b"\n")[2:-1]
        assert lines
        assert all(len(line) == 64 for line in lines)

    def test_gmon_mostly_zero(self):
        data = generate("gmon", 10000, 3)
        assert data.count(0) / len(data) > 0.95

    def test_wordproc_has_both_runs(self):
        data = generate("wordproc", 10000, 3)
        assert bytes(100) in data
        assert b"\xff" * 100 in data

    def test_zero_heavy_has_long_zero_runs(self):
        data = generate("zero-heavy", 10000, 3)
        assert bytes(150) in data

    def test_records_produce_congruent_unequal_cells(self):
        from repro.checksums.internet import ones_complement_sum

        data = generate("records", 50_000, 3)
        cells = np.frombuffer(data[: len(data) - len(data) % 48], np.uint8)
        cells = cells.reshape(-1, 48)
        sums = {}
        congruent_unequal = 0
        for i, cell in enumerate(cells):
            key = ones_complement_sum(cell.tobytes())
            for j in sums.get(key, []):
                if not np.array_equal(cells[j], cell):
                    congruent_unequal += 1
            sums.setdefault(key, []).append(i)
        assert congruent_unequal > 0

    def test_log_lines_share_prefix_structure(self):
        data = generate("log", 5000, 3)
        lines = data.split(b"\n")
        assert sum(line.startswith(b"Jul  7") for line in lines) > 10

    def test_uniform_is_high_entropy(self):
        data = generate("uniform", 65536, 3)
        counts = np.bincount(np.frombuffer(data, np.uint8), minlength=256)
        assert counts.min() > 128  # every byte value well represented
