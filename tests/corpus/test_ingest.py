"""Tests for ingesting real files from disk."""

import builtins
import os

import pytest

from repro.core.supervisor import RunHealth
from repro.corpus.generators import generate
from repro.corpus.ingest import guess_kind, ingest_paths


class TestGuessKind:
    def test_by_extension(self):
        assert guess_kind("a.c", b"int main;") == "source"
        assert guess_kind("notes.md", b"# hi") == "text"
        assert guess_kind("plot.pbm", b"P4 ...") == "image"

    def test_by_magic(self):
        assert guess_kind("mystery", b"\x7fELF\x02" + bytes(100)) == "executable"
        assert guess_kind("mystery", b"P5\n8 8\n255\n" + bytes(64)) == "image"

    def test_by_content(self):
        assert guess_kind("noext", b"plain readable words " * 20) == "text"
        assert guess_kind("noext", bytes(1000)) == "zero-heavy"
        assert guess_kind("noext", bytes(range(128, 256)) * 8) == "binary"


class TestIngestPaths:
    def test_files_and_directories(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "a.txt").write_bytes(b"hello " * 100)
        (tmp_path / "sub" / "b.c").write_bytes(b"int x;\n" * 50)
        (tmp_path / "sub" / "c.bin").write_bytes(generate("executable", 2000, 1))
        fs = ingest_paths([str(tmp_path)])
        assert len(fs) == 3
        kinds = fs.kinds()
        assert "text" in kinds and "source" in kinds

    def test_limit_respected(self, tmp_path):
        for index in range(5):
            (tmp_path / ("f%d" % index)).write_bytes(bytes(1000))
        fs = ingest_paths([str(tmp_path)], limit=2500)
        assert fs.total_bytes <= 2500

    def test_deterministic_order(self, tmp_path):
        for name in ("z", "a", "m"):
            (tmp_path / name).write_bytes(name.encode() * 10)
        a = [f.name for f in ingest_paths([str(tmp_path)])]
        b = [f.name for f in ingest_paths([str(tmp_path)])]
        assert a == b == sorted(a)

    def test_unreadable_skipped(self, tmp_path):
        (tmp_path / "ok").write_bytes(b"fine")
        with pytest.warns(RuntimeWarning, match="skipped 1 unreadable"):
            fs = ingest_paths(
                [str(tmp_path / "ok"), str(tmp_path / "missing")]
            )
        assert len(fs) == 1

    def test_empty_files_skipped(self, tmp_path):
        (tmp_path / "empty").write_bytes(b"")
        (tmp_path / "full").write_bytes(b"x")
        fs = ingest_paths([str(tmp_path)])
        assert [os.path.basename(f.name) for f in fs] == ["full"]

    def test_runs_through_splice_experiment(self, tmp_path):
        from repro.core import run_splice_experiment

        (tmp_path / "data").write_bytes(generate("gmon", 4000, 1))
        fs = ingest_paths([str(tmp_path)])
        counters = run_splice_experiment(fs).counters
        assert counters.total > 0


class TestIngestHardening:
    """Unreadable entries never abort an ingest; they are counted."""

    def test_vanished_mid_walk_files_are_skipped(self, tmp_path, monkeypatch):
        for name in ("a", "b", "c"):
            (tmp_path / name).write_bytes(b"x" * 64)
        real_open = builtins.open

        def flaky_open(path, *args, **kwargs):
            # "b" vanishes between the walk and the open.
            if str(path).endswith("b"):
                raise FileNotFoundError(2, "vanished mid-walk", str(path))
            return real_open(path, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", flaky_open)
        health = RunHealth()
        with pytest.warns(RuntimeWarning, match="skipped 1 unreadable"):
            fs = ingest_paths([str(tmp_path)], health=health)
        assert len(fs) == 2
        assert health.files_skipped == 1
        assert any("unreadable" in note for note in health.degradations)

    def test_permission_denied_files_are_skipped(self, tmp_path, monkeypatch):
        for name in ("a", "b"):
            (tmp_path / name).write_bytes(b"x" * 64)
        real_open = builtins.open

        def denied_open(path, *args, **kwargs):
            if str(path).endswith("a"):
                raise PermissionError(13, "denied", str(path))
            return real_open(path, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", denied_open)
        with pytest.warns(RuntimeWarning, match="PermissionError"):
            fs = ingest_paths([str(tmp_path)])
        assert len(fs) == 1

    def test_one_aggregated_warning_for_many_skips(self, tmp_path):
        (tmp_path / "ok").write_bytes(b"fine")
        missing = [str(tmp_path / ("gone%d" % i)) for i in range(5)]
        with pytest.warns(RuntimeWarning) as records:
            fs = ingest_paths([str(tmp_path / "ok"), *missing])
        ours = [
            r for r in records
            if "unreadable" in str(r.message)
        ]
        assert len(ours) == 1
        assert "skipped 5 unreadable" in str(ours[0].message)
        assert "and 2 more" in str(ours[0].message)
        assert len(fs) == 1

    def test_unwalkable_directory_is_counted(self, tmp_path):
        health = RunHealth()
        with pytest.warns(RuntimeWarning, match="unreadable"):
            fs = ingest_paths(
                [str(tmp_path / "no-such-dir") + os.sep], health=health
            )
        # A nonexistent path is not a directory, so it goes down the
        # file branch and is skipped there; either way it is counted.
        assert len(fs) == 0
        assert health.files_skipped == 1

    def test_clean_ingest_stays_warning_free(self, tmp_path, recwarn):
        (tmp_path / "ok").write_bytes(b"fine")
        health = RunHealth()
        fs = ingest_paths([str(tmp_path)], health=health)
        assert len(fs) == 1
        assert health.files_skipped == 0
        assert not health.eventful
        assert [w for w in recwarn if issubclass(
            w.category, RuntimeWarning)] == []
