"""Tests for filesystem profiles and the filesystem builder."""

import pytest

from repro.corpus.filesystem import Filesystem, SyntheticFile
from repro.corpus.profiles import (
    PROFILES,
    FilesystemProfile,
    build_filesystem,
    profile_names,
)


class TestProfileDefinitions:
    def test_paper_systems_present(self):
        names = profile_names()
        for required in ("sics-opt", "stanford-u1", "pathological-pbm", "uniform"):
            assert required in names

    def test_all_mixes_reference_known_generators(self):
        # Construction already validates; just touch every profile.
        for profile in PROFILES.values():
            assert profile.mix

    def test_unknown_generator_rejected(self):
        with pytest.raises(ValueError, match="unknown generator"):
            FilesystemProfile("bad", {"nosuch": 1})

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            FilesystemProfile("bad", {})


class TestBuilder:
    def test_deterministic(self):
        a = build_filesystem("sics-src1", 150_000, seed=9)
        b = build_filesystem("sics-src1", 150_000, seed=9)
        assert a.concatenated() == b.concatenated()
        assert [f.name for f in a] == [f.name for f in b]

    def test_seed_changes_content(self):
        a = build_filesystem("sics-src1", 150_000, seed=9)
        b = build_filesystem("sics-src1", 150_000, seed=10)
        assert a.concatenated() != b.concatenated()

    def test_reaches_requested_size(self):
        fs = build_filesystem("nsc05", 200_000, seed=1)
        assert fs.total_bytes >= 200_000

    def test_rare_kinds_always_materialise(self):
        # The PBM directory is a tiny fraction but must exist.
        fs = build_filesystem("stanford-u1", 600_000, seed=1)
        kinds = fs.kinds()
        assert "pbm-plot" in kinds
        assert "gmon" in kinds

    def test_budgets_roughly_proportional(self):
        fs = build_filesystem("sics-opt", 1_000_000, seed=1)
        kinds = fs.kinds()
        share = kinds["executable"] / fs.total_bytes
        profile = PROFILES["sics-opt"]
        expected = profile.mix["executable"] / sum(profile.mix.values())
        assert abs(share - expected) < 0.15

    def test_accepts_profile_object(self):
        profile = FilesystemProfile("custom", {"english": 1}, size_range=(1000, 2000))
        fs = build_filesystem(profile, 10_000, seed=0)
        assert all(f.kind == "english" for f in fs)
        assert all(1000 <= f.size <= 2500 for f in fs)


class TestFilesystemContainer:
    def test_kinds_accounting(self):
        fs = Filesystem("t")
        fs.add(SyntheticFile("a", b"xx", "english"))
        fs.add(SyntheticFile("b", b"yyy", "english"))
        fs.add(SyntheticFile("c", b"z", "gmon"))
        assert fs.kinds() == {"english": 5, "gmon": 1}
        assert fs.total_bytes == 6
        assert len(fs) == 3

    def test_concatenated(self):
        fs = Filesystem("t")
        fs.add(SyntheticFile("a", b"ab", "english"))
        fs.add(SyntheticFile("b", b"cd", "english"))
        assert fs.concatenated() == b"abcd"
