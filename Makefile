# Convenience targets for the checksum reproduction.

PYTHON ?= python

.PHONY: install test bench report figures quicktest clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

quicktest:
	$(PYTHON) -m pytest tests/ -x -q -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro.cli report -o report.md --bytes 400000

figures:
	$(PYTHON) -m repro.cli run figure2 --bytes 600000 --svg figure2.svg
	$(PYTHON) -m repro.cli run figure3 --bytes 600000 --svg figure3.svg

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
