# Convenience targets for the checksum reproduction.

PYTHON ?= python

.PHONY: install test bench bench-compare microbench report figures quicktest chaos channel-check cache-stats cache-audit store-check lint clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

quicktest:
	$(PYTHON) -m pytest tests/ -x -q -m "not slow"

# Fault-injection verification: the chaos-marked tests (crash
# consistency at every shard boundary, chaotic sweeps) plus the CLI
# harness that injects worker crashes, bit rot, and ENOSPC into a real
# sweep and asserts the counters come out bit-identical.
chaos:
	$(PYTHON) -m pytest tests/ -q -m chaos
	$(PYTHON) -m repro.cli chaos --bytes 120000

# Channel simulator verification: the conformance + replay suite, then
# a traced run over the burst channel replayed bit-identically from
# its own recording.
channel-check:
	$(PYTHON) -m pytest tests/channel -q
	$(PYTHON) -m repro.cli channel run --plan bursty-link --bytes 120000 \
		--trace channel.trace
	$(PYTHON) -m repro.cli channel replay channel.trace
	rm -f channel.trace

# Quick throughput snapshot (BENCH_<n>.json + delta table vs the
# previous one) and the overhead guarantees: disabled telemetry (<2%),
# sweep journaling (<3%) and the store resilience layer (<2% of
# hot-path wall time), all asserted.
bench: bench-compare
	$(PYTHON) -m repro.cli bench --quick
	$(PYTHON) -m pytest benchmarks/test_telemetry_overhead.py benchmarks/test_journal_overhead.py benchmarks/test_resilience_overhead.py -q -s

# Scalar-vs-batch engine comparison: bit-identical counters (the
# conformance half) and the advertised >=5x batch speedup floor on the
# bench smoke corpus (the performance half), both asserted.
bench-compare:
	$(PYTHON) -m pytest benchmarks/test_engine_kinds.py -q -s

# The full pytest-benchmark suite (regenerates every table & figure).
microbench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# --cache: the second invocation is served from the artifact store
# (~/.cache/repro-checksums or $REPRO_CHECKSUMS_CACHE) and is near-instant.
report:
	$(PYTHON) -m repro.cli report -o report.md --bytes 400000 --cache

cache-stats:
	$(PYTHON) -m repro.cli cache stats

cache-audit:
	$(PYTHON) -m repro.cli cache audit

# Backend conformance + scrubber + resilience: the store suite across
# local, memory, HTTP, multiplexed, and striped backends, the
# byte-identical sweep transparency checks, the scrub/repair chaos
# tests, and the self-healing layer (retry policy, circuit breakers,
# hedged reads, the degraded-mode write spool).
store-check:
	$(PYTHON) -m pytest tests/store/test_backends.py tests/store/test_scrub.py \
		tests/store/test_backends_sweep.py tests/faults/test_remote_faults.py \
		tests/store/test_resilience.py tests/store/test_spool.py \
		tests/faults/test_resilience_chaos.py -q

# Static analysis: the domain-aware reprolint rules always run (with
# the incremental cache, so edit-lint loops stay fast); ruff and mypy
# run only when installed (CI installs them; the hermetic dev
# container may not have them, and lint must not demand a network).
lint:
	$(PYTHON) -m repro.cli lint --cache .lint-cache.json src
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping (pip install ruff)"; \
	fi
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHON) -m mypy --config-file pyproject.toml src/repro/checksums src/repro/store src/repro/telemetry; \
	else \
		echo "mypy not installed; skipping (pip install mypy)"; \
	fi

figures:
	$(PYTHON) -m repro.cli run figure2 --bytes 600000 --svg figure2.svg
	$(PYTHON) -m repro.cli run figure3 --bytes 600000 --svg figure3.svg

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .lint-cache.json
	find . -name __pycache__ -type d -exec rm -rf {} +
