#!/usr/bin/env python
"""Quickstart: checksums, framing, and a first splice experiment.

Run with::

    python examples/quickstart.py
"""

from repro import build_filesystem, get_algorithm, run_splice_experiment
from repro.checksums import crc_combine, internet_checksum
from repro.protocols import build_aal5_frame
from repro.protocols.packetizer import Packetizer, PacketizerConfig


def checksum_basics():
    print("== checksum basics ==")
    data = b"Performance of Checksums and CRCs over Real Data"

    internet = get_algorithm("internet")
    print("Internet checksum : 0x%04x" % internet.compute(data))

    # The order-independence weakness: swap two 16-bit words, same sum.
    swapped = data[2:4] + data[0:2] + data[4:]
    assert internet_checksum(swapped) == internet_checksum(data)
    print("word-swapped data : 0x%04x  (identical -- the paper's weakness)"
          % internet.compute(swapped))

    for name in ("fletcher255", "fletcher256", "crc32-aal5", "crc16-ccitt"):
        algorithm = get_algorithm(name)
        print("%-18s: 0x%0*x" % (name, (algorithm.bits + 3) // 4,
                                 algorithm.compute(data)))

    # CRCs compose: the CRC of a concatenation from the piece CRCs.
    crc = get_algorithm("crc32-aal5")
    a, b = data[:20], data[20:]
    combined = crc_combine(crc, crc.compute(a), crc.compute(b), len(b))
    assert combined == crc.compute(data)
    print("crc_combine(a, b) == crc(a || b): OK")


def framing_basics():
    print("\n== packetize and frame a payload ==")
    packet = Packetizer(PacketizerConfig()).packetize(bytes(range(256)))[0]
    frame = build_aal5_frame(packet.ip_packet)
    print("IP packet bytes   : %d" % len(packet.ip_packet))
    print("AAL5 frame bytes  : %d (%d ATM cells)" % (len(frame.frame),
                                                     frame.cell_count))


def first_experiment():
    print("\n== the paper's experiment, in four lines ==")
    fs = build_filesystem("stanford-u1", 400_000, seed=3)
    result = run_splice_experiment(fs)
    c = result.counters
    print("splices inspected : %d" % c.total)
    print("remaining (bad)   : %d" % c.remaining)
    print("missed by TCP sum : %d (%.4f%% -- uniform data predicts %.4f%%)"
          % (c.missed_transport, c.miss_rate_transport, 100 / 65536))
    print("missed by CRC-32  : %d" % c.missed_crc32)
    print("effective bits    : %.1f (a 16-bit checksum acting like ~%d bits)"
          % (c.effective_bits, round(c.effective_bits)))


if __name__ == "__main__":
    checksum_basics()
    framing_basics()
    first_experiment()
