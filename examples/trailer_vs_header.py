#!/usr/bin/env python
"""The paper's surprise: trailer checksums beat header checksums.

Run with::

    python examples/trailer_vs_header.py [--bytes N]

A splice that passes the header checks almost always carries the first
packet's header cell -- and with it the checksum that covered that
header.  A trailer-placed checksum instead travels with the *second*
packet, so the splice must reconcile three differently-"coloured"
distributions (data cells, first header, second header).  By Lemma 9,
requiring two draws from the same distribution to differ by a fixed
constant is never more likely than requiring them to be equal, so the
trailer sum wins -- 20x-50x in the paper, and it also (benignly)
rejects splices whose data happens to be identical.
"""

import argparse

from repro import build_filesystem, run_splice_experiment
from repro.experiments.render import TextTable, fmt_count, fmt_pct
from repro.protocols.packetizer import ChecksumPlacement, PacketizerConfig


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="stanford-u1")
    parser.add_argument("--bytes", type=int, default=600_000)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    fs = build_filesystem(args.profile, args.bytes, args.seed)
    base = PacketizerConfig()
    header = run_splice_experiment(fs, base).counters
    trailer = run_splice_experiment(
        fs, base.with_overrides(placement=ChecksumPlacement.TRAILER)
    ).counters

    table = TextTable(["outcome", "header sum", "trailer sum"])
    table.add_row("splices inspected", fmt_count(header.total),
                  fmt_count(trailer.total))
    table.add_row("remaining (corrupted)", fmt_count(header.remaining),
                  fmt_count(trailer.remaining))
    table.add_row("passes checksum, data changed",
                  fmt_count(header.missed_transport),
                  fmt_count(trailer.missed_transport))
    table.add_row("fails checksum, data identical",
                  fmt_count(header.identical_rejected),
                  fmt_count(trailer.identical_rejected))
    table.add_row("miss rate", fmt_pct(header.miss_rate_transport),
                  fmt_pct(trailer.miss_rate_transport))
    print(table.render())

    if trailer.missed_transport:
        ratio = header.missed_transport / trailer.missed_transport
        print("\ntrailer placement misses %.0fx fewer corrupted splices" % ratio)
    else:
        print("\ntrailer placement missed nothing at this scale")
    print("spurious rejections are benign: the packet was lost anyway, so")
    print("a retransmission was already inevitable (Section 5.3).")


if __name__ == "__main__":
    main()
