#!/usr/bin/env python
"""Reproduce the paper's splice tables (Tables 1-3) on chosen profiles.

Run with::

    python examples/splice_study.py [--bytes N] [--seed S] [profile ...]

This is the paper's core experiment: simulate FTP transfers over
TCP/IP on AAL5/ATM, enumerate every cell-drop splice of each adjacent
packet pair, and count what the header checks, the AAL5 CRC-32, and
the TCP checksum each catch.
"""

import argparse

from repro import build_filesystem, profile_names, run_splice_experiment
from repro.experiments.render import TextTable, fmt_count, fmt_pct


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("profiles", nargs="*",
                        default=["nsc05", "sics-opt", "stanford-u1"],
                        help="filesystem profiles to simulate (see "
                             "`repro-checksums profiles`)")
    parser.add_argument("--bytes", type=int, default=600_000)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()
    unknown = set(args.profiles) - set(profile_names())
    if unknown:
        parser.error("unknown profiles: %s" % ", ".join(sorted(unknown)))

    table = TextTable(["system", "total", "hdr-caught", "identical",
                       "remaining", "CRC miss", "TCP miss", "TCP miss %",
                       "eff. bits"])
    for name in args.profiles:
        fs = build_filesystem(name, args.bytes, args.seed)
        counters = run_splice_experiment(fs).counters
        table.add_row(
            name,
            fmt_count(counters.total),
            fmt_count(counters.caught_by_header),
            fmt_count(counters.identical),
            fmt_count(counters.remaining),
            fmt_count(counters.missed_crc32),
            fmt_count(counters.missed_transport),
            fmt_pct(counters.miss_rate_transport),
            "%.1f" % counters.effective_bits,
        )
    print(table.render())
    print("\nuniform-data expectation for a 16-bit sum: %s"
          % fmt_pct(100 / 65536))
    print("paper's measured band: 0.008% - 0.22% "
          "(10x-100x worse than uniform)")


if __name__ == "__main__":
    main()
