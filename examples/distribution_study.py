#!/usr/bin/env python
"""Reproduce the distribution analyses (Figures 2-3, Tables 4-5).

Run with::

    python examples/distribution_study.py [--bytes N] [--profile P]

Shows why the TCP checksum fails on real data: checksum values over
48-byte cells are heavily skewed, nearby blocks are far more likely to
collide than the global statistics suggest, and aggregation flattens
the distribution much more slowly than an i.i.d. model predicts.
"""

import argparse

from repro import profile_names
from repro.experiments.registry import run_experiment


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="stanford-u1",
                        choices=profile_names())
    parser.add_argument("--bytes", type=int, default=600_000)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()
    kwargs = dict(fs_bytes=args.bytes, seed=args.seed, system=args.profile)

    for experiment_id in ("figure2", "figure3", "table4", "table5"):
        report = run_experiment(experiment_id, **kwargs)
        print("=" * 72)
        print(report)
        print()


if __name__ == "__main__":
    main()
