#!/usr/bin/env python
"""Run the splice experiment over your own data or a custom profile.

Run with::

    python examples/custom_corpus.py [paths ...]

Given file or directory paths, this packs *your* bytes into a
filesystem and measures how the TCP checksum, Fletcher, and a trailer
sum would fare against AAL5 packet splices of that data -- the
paper's methodology applied to data you care about.  Without
arguments it demonstrates a custom synthetic profile instead.
"""

import argparse

from repro import run_splice_experiment
from repro.corpus import build_filesystem
from repro.corpus.ingest import ingest_paths
from repro.corpus.profiles import FilesystemProfile
from repro.experiments.render import TextTable, fmt_pct
from repro.protocols.packetizer import ChecksumPlacement, PacketizerConfig


def demo_profile():
    """A custom mix: half C source, half sparse profiling data."""
    profile = FilesystemProfile(
        "half-and-half",
        {"c-source": 1, "gmon": 1},
        size_range=(4_000, 40_000),
        description="custom demo profile",
    )
    return build_filesystem(profile, 400_000, seed=1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*", help="files or directories to measure")
    args = parser.parse_args()

    fs = ingest_paths(args.paths, limit=5_000_000) if args.paths else demo_profile()
    print("measuring %d files, %d bytes (%s)\n" % (len(fs), fs.total_bytes, fs.name))

    base = PacketizerConfig()
    table = TextTable(["checksum", "missed", "remaining", "miss %"])
    for label, config in [
        ("TCP (header)", base),
        ("TCP (trailer)", base.with_overrides(placement=ChecksumPlacement.TRAILER)),
        ("Fletcher-255", base.with_overrides(algorithm="fletcher255")),
        ("Fletcher-256", base.with_overrides(algorithm="fletcher256")),
    ]:
        counters = run_splice_experiment(fs, config).counters
        table.add_row(label, counters.missed_transport, counters.remaining,
                      fmt_pct(counters.miss_rate_transport))
    print(table.render())
    print("\nuniform-data expectation: %s" % fmt_pct(100 / 65536))


if __name__ == "__main__":
    main()
