#!/usr/bin/env python
"""Cell splices vs fragment splices: the offset-colouring effect.

Run with::

    python examples/fragmentation_study.py [--bytes N]

The paper's Section 5.2 explains Fletcher's advantage over the TCP
checksum on cell splices: every dropped cell *shifts* the cells behind
it, so each cell's positional contribution is "coloured" by its
offset, and non-uniform data makes a fixed-offset collision less
likely than an equal-value collision (Lemma 9).

IP fragmentation-and-reassembly errors (the abstract's other error
model) substitute fragments at the **same byte offset** -- nothing
shifts.  This example measures both models on the same corpus and
shows Fletcher's advantage evaporate when the colouring does.
"""

import argparse

from repro import build_filesystem, run_splice_experiment
from repro.core.fragsplice import run_fragment_splice_experiment
from repro.experiments.render import TextTable, fmt_pct
from repro.protocols.packetizer import PacketizerConfig


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="sics-opt")
    parser.add_argument("--bytes", type=int, default=200_000)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--mtu", type=int, default=92)
    args = parser.parse_args()

    fs = build_filesystem(args.profile, args.bytes, args.seed)
    base = PacketizerConfig()

    fragment_results = run_fragment_splice_experiment(fs, base, mtu=args.mtu)
    table = TextTable(["checksum", "cell splices (shifted)",
                       "fragment splices (same offset)"])
    ratios = {}
    for algorithm in ("tcp", "fletcher255", "fletcher256"):
        cell = run_splice_experiment(
            fs, base.with_overrides(algorithm=algorithm)
        ).counters.miss_rate_transport
        fragment = fragment_results[algorithm].miss_rate(algorithm)
        ratios[algorithm] = (cell, fragment)
        table.add_row(algorithm, fmt_pct(cell), fmt_pct(fragment))
    print(table.render())

    tcp_cell, tcp_frag = ratios["tcp"]
    f_cell, f_frag = ratios["fletcher256"]
    print("\ncell-splice model   : Fletcher-256 beats TCP by %.0fx"
          % (tcp_cell / max(f_cell, 1e-9)))
    print("fragment-splice model: Fletcher-256 vs TCP ratio is %.1fx --"
          % (tcp_frag / max(f_frag, 1e-9)))
    print("the positional colouring is gone when offsets are preserved.")


if __name__ == "__main__":
    main()
