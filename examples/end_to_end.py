#!/usr/bin/env python
"""End to end: what does the application actually receive?

Run with::

    python examples/end_to_end.py [--bytes N] [--loss P]

Everything else in this repository measures how often checks fail;
this example runs the whole loop -- packetize, frame, lose cells,
reassemble, validate, retransmit -- and reports the application-level
outcome.  With the AAL5 CRC in place, corrupted frames are all caught
(at the price of retransmissions); strip the CRC away and the TCP
checksum alone lets splices through as silent corruption, exactly as
the paper warns for checksum-only links like Compressed SLIP
("that's probably not wise").
"""

import argparse

from repro.corpus.generators import generate
from repro.experiments.render import TextTable, fmt_count
from repro.protocols.cellstream import IndependentLoss
from repro.sim import simulate_file_transfer


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bytes", type=int, default=250_000)
    parser.add_argument("--loss", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=2)
    args = parser.parse_args()

    data = generate("gmon", args.bytes, 3)  # checksum-hostile profile data
    loss = IndependentLoss(args.loss)

    table = TextTable(
        ["integrity stack", "clean", "silently corrupted", "rejected",
         "retx ratio"]
    )
    for label, use_crc in (("TCP checksum + AAL5 CRC", True),
                           ("TCP checksum only", False)):
        report = simulate_file_transfer(
            data, loss, use_crc=use_crc, seed=args.seed
        )
        table.add_row(
            label,
            fmt_count(report.delivered_clean),
            fmt_count(report.delivered_corrupted),
            fmt_count(report.frames_rejected),
            "%.2f" % report.retransmission_ratio,
        )
    print(table.render())
    print("\n'silently corrupted' packets passed every check the stack had")
    print("and delivered wrong bytes to the application -- the event the")
    print("paper's entire analysis exists to quantify.")


if __name__ == "__main__":
    main()
