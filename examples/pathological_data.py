#!/usr/bin/env python
"""Section 5.5: real files that defeat specific checksums.

Run with::

    python examples/pathological_data.py [--bytes N]

The paper found that pathological patterns are not theoretical -- they
sit in ordinary directories:

* black-and-white PBM plots (all bytes 0x00/0xFF) make Fletcher
  mod-255 fail on a quarter of *all* splice permutations, because 0x00
  and 0xFF are both zero mod 255;
* hex-encoded PostScript bitmaps repeat near-identical lines exactly
  ``2 * width + 1`` bytes apart (width a power of two), hurting both
  F-256 and TCP;
* gmon.out-style profiles (almost all zeros, sparse identical
  counters) produce so few distinct checksums that the TCP sum misses
  percents of splices.
"""

import argparse

from repro.experiments.registry import run_experiment


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bytes", type=int, default=400_000)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    report = run_experiment("pathological", fs_bytes=args.bytes, seed=args.seed)
    print(report)

    pbm = report.data["pathological-pbm"]
    print("\nOn pure 0/255 PBM data, Fletcher-255 misses %.1f%% of corrupted"
          % pbm["F-255"])
    print("splices -- total failure, as the paper reports for the Stanford")
    print("directory of RTT measurement graphs.")


if __name__ == "__main__":
    main()
