#!/usr/bin/env python
"""The library as a networking toolbox: streams, UDP, NAT, options.

Run with::

    python examples/streaming_and_forwarding.py

Beyond the reproduction, the checksum and protocol layers are usable
on their own.  This example walks through:

1. hashlib-style streaming checksums (data arriving in chunks);
2. UDP datagrams and the two ones-complement zeros (0x0000 = "no
   checksum", computed zero sent as 0xFFFF);
3. a router path: TTL decrement and NAT rewrite with *incremental*
   checksum updates (RFC 1141/1624), never recomputing from scratch;
4. negotiating Fletcher via the RFC 1146 TCP alternate-checksum option.
"""

from repro.checksums.streaming import open_stream
from repro.protocols.forwarding import (
    decrement_ttl,
    rewrite_addresses,
    verify_ip_header,
)
from repro.protocols.ip import parse_ipv4_header
from repro.protocols.packetizer import Packetizer, PacketizerConfig
from repro.protocols.tcp import verify_tcp_checksum
from repro.protocols.tcpoptions import (
    alternate_checksum_request,
    build_tcp_header_with_options,
    negotiated_algorithm,
)
from repro.protocols.udp import build_udp_datagram, parse_udp_header, verify_udp_datagram


def streaming_demo():
    print("== streaming checksums ==")
    chunks = [b"data arriving ", b"in arbitrary ", b"chunks"]
    for name in ("internet", "fletcher256", "crc32-aal5", "crc16-ccitt"):
        stream = open_stream(name)
        for chunk in chunks:
            stream.update(chunk)
        print("%-12s -> 0x%x" % (name, stream.value()))


def udp_demo():
    print("\n== UDP and the two zeros ==")
    datagram = build_udp_datagram("10.0.0.1", "10.0.0.2", 53, 9999, b"query")
    header = parse_udp_header(datagram)
    print("checksum field 0x%04x, verifies: %s" % (
        header.checksum, verify_udp_datagram("10.0.0.1", "10.0.0.2", datagram)))
    bare = build_udp_datagram("10.0.0.1", "10.0.0.2", 53, 9999, b"query",
                              with_checksum=False)
    print("no-checksum sentinel 0x%04x still accepted: %s" % (
        parse_udp_header(bare).checksum,
        verify_udp_datagram("10.0.0.1", "10.0.0.2", bare)))


def forwarding_demo():
    print("\n== incremental forwarding (RFC 1141/1624) ==")
    packet = Packetizer(PacketizerConfig()).packetize(b"via three routers")[0]
    hop = packet.ip_packet
    for _ in range(3):
        hop = decrement_ttl(hop)
    nat = rewrite_addresses(hop, new_src="203.0.113.7")
    header = parse_ipv4_header(nat)
    print("after 3 hops + NAT: ttl=%d src=%08x" % (header.ttl, header.src))
    print("IP header verifies : %s" % verify_ip_header(nat))
    print("TCP still verifies : %s" % verify_tcp_checksum(
        "203.0.113.7", PacketizerConfig().dst, nat[20:]))
    print("(both checksums were patched from deltas, never recomputed)")


def options_demo():
    print("\n== RFC 1146 alternate checksum negotiation ==")
    header = build_tcp_header_with_options(
        20, 54321, 1, 0, [alternate_checksum_request("fletcher255")]
    )
    print("SYN carries options, data offset %d words" % (header[12] >> 4))
    print("peer decodes request: %s" % negotiated_algorithm(header))


if __name__ == "__main__":
    streaming_demo()
    udp_demo()
    forwarding_demo()
    options_demo()
