#!/usr/bin/env python
"""Loss processes: weighted splices, Monte Carlo, and why EPD works.

Run with::

    python examples/loss_processes.py [--bytes N]

The paper treats every splice as equally likely and notes (Section
4.6) that real loss processes might not.  This example:

1. shows that under *independent* cell loss every splice of a pair is
   exactly equally likely (so the paper's treatment is exact there);
2. re-weights the enumeration under a bursty (Gilbert) channel and
   shows the conditional miss rate move;
3. runs the physical simulation -- drop cells, reassemble, judge --
   and compares it with the exact enumeration;
4. repeats it under Early Packet Discard, where no splice survives.
"""

import argparse

from repro.core.engine import EngineOptions, SpliceEngine
from repro.core.lossmodel import (
    splice_pattern_probabilities,
    weighted_splice_rates,
)
from repro.core.enumeration import enumerate_splices
from repro.core.montecarlo import run_monte_carlo
from repro.corpus import build_filesystem
from repro.protocols.cellstream import (
    EarlyPacketDiscard,
    GilbertLoss,
    IndependentLoss,
)
from repro.protocols.ftpsim import FileTransferSimulator
from repro.protocols.packetizer import PacketizerConfig


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bytes", type=int, default=150_000)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    # 1. Independent loss weights are uniform over splices.
    enum = enumerate_splices(7, 7)
    weights = splice_pattern_probabilities(enum, IndependentLoss(0.2))
    print("splices of a 7-cell pair:", enum.splices)
    print("weight spread under independent loss: %.3g (identical weights)"
          % float(weights.max() - weights.min()))

    fs = build_filesystem("pathological-gmon", args.bytes, args.seed)
    config = PacketizerConfig()
    options = EngineOptions.from_packetizer(config, aux_crcs=())
    simulator = FileTransferSimulator(config)
    units = max((simulator.transfer(f.data) for f in fs), key=len)

    # 2. Weighted conditional rates.
    for label, model in [("independent p=0.2", IndependentLoss(0.2)),
                         ("Gilbert bursty", GilbertLoss(0.05, 0.3))]:
        rates = weighted_splice_rates(units, model, options)
        print("%-20s conditional miss %% = %.4f   P[miss]/pair = %.2e" % (
            label, rates["conditional_miss_pct"], rates["p_transport_miss"]))

    # 3. Monte Carlo vs enumeration.
    counters = SpliceEngine(options).evaluate_stream(units)
    tally = run_monte_carlo(units, IndependentLoss(0.25), options,
                            trials=150, seed=args.seed)
    print("\nenumeration miss rate : %.3f%% over %d corrupted splices"
          % (counters.miss_rate_transport, counters.remaining))
    print("Monte Carlo miss rate : %.3f%% over %d corrupted frames"
          % (tally.transport_miss_rate, tally.corrupted_frames))
    print("undetected by both checks: %d (the CRC backstops the sum)"
          % tally.undetected_corruption)

    # 4. Early Packet Discard.
    epd = run_monte_carlo(units, EarlyPacketDiscard(IndependentLoss(0.25)),
                          options, trials=150, seed=args.seed)
    print("\nunder Early Packet Discard: %d corrupted frames reached the "
          "checksums (Section 7)" % epd.corrupted_frames)


if __name__ == "__main__":
    main()
